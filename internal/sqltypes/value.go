// Package sqltypes defines the value, row, schema and relation types shared
// by every layer of the federation: remote server storage and executors, the
// integrator's merge operators, and the wrappers that ship rows across the
// simulated network.
package sqltypes

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value kinds supported by the SQL subset.
type Kind uint8

const (
	// KindNull is the SQL NULL marker.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is only meaningful for KindInt and
// KindBool values.
func (v Value) Int() int64 { return v.i }

// Float returns the value coerced to float64 (ints are widened).
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload. Only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Bool reports the value's truthiness. Booleans and integers are true when
// nonzero, floats when nonzero (including NaN), and NULL and strings are
// always false. This mirrors sqlparser's truthiness for the kinds that carry
// a numeric payload, so NewFloat(1).Bool() is true.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return false
	}
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and plan signatures.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float; strings lexically; bools false<true.
// Cross-kind non-numeric comparisons order by kind to keep sorting total.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindBool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports SQL equality treating NULL as not equal to anything,
// including NULL.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a stable hash of the value, suitable for hash joins and
// grouping. Numerically equal int/float values hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindInt, KindBool:
		writeUint64(h, uint64(v.i))
	case KindFloat:
		if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			writeUint64(h, uint64(int64(v.f)))
		} else {
			writeUint64(h, math.Float64bits(v.f))
		}
	case KindString:
		h.Write([]byte{2})
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// ByteSize approximates the wire size of the value in bytes, used by the
// network transfer model.
func (v Value) ByteSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 2 + len(v.s)
	default:
		return 1
	}
}

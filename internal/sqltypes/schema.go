package sqltypes

import (
	"fmt"
	"strings"
)

// Column describes one column of a schema.
type Column struct {
	// Table is the (possibly aliased) table qualifier; may be empty for
	// computed columns.
	Table string
	// Name is the column name.
	Name string
	// Type is the declared value kind.
	Type Kind
}

// QualifiedName returns "table.name" or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColumnIndex resolves a possibly-qualified column reference to an index.
// It returns an error when the reference is unknown or ambiguous.
func (s *Schema) ColumnIndex(table, name string) (int, error) {
	found := -1
	lname := strings.ToLower(name)
	ltable := strings.ToLower(table)
	for i, c := range s.Columns {
		if strings.ToLower(c.Name) != lname {
			continue
		}
		if table != "" && strings.ToLower(c.Table) != ltable {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqltypes: ambiguous column reference %q", Column{Table: table, Name: name}.QualifiedName())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("sqltypes: unknown column %q", Column{Table: table, Name: name}.QualifiedName())
	}
	return found, nil
}

// Concat returns a new schema that is s followed by other, as produced by a
// join.
func (s *Schema) Concat(other *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(other.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, other.Columns...)
	return &Schema{Columns: cols}
}

// WithQualifier returns a copy of the schema with every column's table
// qualifier replaced, as when a table is aliased in FROM.
func (s *Schema) WithQualifier(q string) *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	for i := range cols {
		cols[i].Table = q
	}
	return &Schema{Columns: cols}
}

// String renders the schema for plan display.
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.QualifiedName() + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is a tuple of values, positionally matched to a schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row that is r followed by other.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	out = append(out, other...)
	return out
}

// ByteSize approximates the wire size of the row.
func (r Row) ByteSize() int {
	n := 4 // row header
	for _, v := range r {
		n += v.ByteSize()
	}
	return n
}

// Relation is a materialized result set: a schema and its rows.
type Relation struct {
	Schema *Schema
	Rows   []Row
}

// NewRelation builds an empty relation over a schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{Schema: schema}
}

// Cardinality returns the number of rows.
func (r *Relation) Cardinality() int { return len(r.Rows) }

// ByteSize approximates the wire size of the whole relation.
func (r *Relation) ByteSize() int {
	n := 16
	for _, row := range r.Rows {
		n += row.ByteSize()
	}
	return n
}

// String renders a compact preview of the relation (schema plus up to ten
// rows), for examples and debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	b.WriteString(fmt.Sprintf(" [%d rows]", len(r.Rows)))
	for i, row := range r.Rows {
		if i >= 10 {
			b.WriteString("\n  ...")
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		b.WriteString("\n  " + strings.Join(parts, " | "))
	}
	return b.String()
}

package sqltypes

import (
	"math"
	"math/rand"
	"testing"
)

// randValue draws from a distribution heavy on edge cases: NULLs, cross-kind
// numeric collisions, NaN, ±0.0, empty and colliding strings.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(10) {
	case 0, 1:
		return Null
	case 2:
		return NewInt(rng.Int63n(16) - 8)
	case 3:
		return NewInt(rng.Int63() - rng.Int63())
	case 4:
		return NewFloat(float64(rng.Int63n(16) - 8)) // collides with ints
	case 5:
		switch rng.Intn(4) {
		case 0:
			return NewFloat(math.NaN())
		case 1:
			return NewFloat(math.Copysign(0, -1))
		case 2:
			return NewFloat(math.Inf(1))
		default:
			return NewFloat(rng.NormFloat64() * 1e6)
		}
	case 6:
		return NewBool(rng.Intn(2) == 0)
	case 7:
		return NewString("")
	default:
		letters := []string{"a", "b", "ab", "ba", "x", "zzz"}
		return NewString(letters[rng.Intn(len(letters))])
	}
}

func TestHashHelpersMatchValueHash(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	if got, want := HashNull(), Null.Hash(); got != want {
		t.Fatalf("HashNull() = %d, Value.Hash() = %d", got, want)
	}
	for i := 0; i < 5000; i++ {
		v := randValue(rng)
		var got uint64
		switch v.Kind() {
		case KindNull:
			got = HashNull()
		case KindInt:
			got = HashInt64(v.Int())
		case KindFloat:
			got = HashFloat64(v.Float())
		case KindString:
			got = HashString(v.Str())
		case KindBool:
			got = HashBool(v.Bool())
		}
		if want := v.Hash(); got != want {
			t.Fatalf("typed hash of %v = %d, Value.Hash() = %d", v, got, want)
		}
	}
}

func TestHashColumnMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := make([]Value, 1000)
	for i := range col {
		col[i] = randValue(rng)
	}
	out := HashColumn(col, nil)
	if len(out) != len(col) {
		t.Fatalf("HashColumn returned %d hashes for %d values", len(out), len(col))
	}
	for i, v := range col {
		if out[i] != v.Hash() {
			t.Fatalf("HashColumn[%d] of %v = %d, Value.Hash() = %d", i, v, out[i], v.Hash())
		}
	}
	// Reusing an oversized buffer must not change results or length.
	buf := make([]uint64, 2*len(col))
	out2 := HashColumn(col, buf)
	if len(out2) != len(col) {
		t.Fatalf("HashColumn with buffer returned %d hashes", len(out2))
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("HashColumn buffer reuse diverged at %d", i)
		}
	}
}

func TestCompareColumnsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 1000
	a := make([]Value, n)
	b := make([]Value, n)
	for i := 0; i < n; i++ {
		a[i] = randValue(rng)
		b[i] = randValue(rng)
	}
	out := CompareColumns(a, b, nil)
	for i := 0; i < n; i++ {
		if want := Compare(a[i], b[i]); out[i] != want {
			t.Fatalf("CompareColumns[%d] (%v vs %v) = %d, Compare = %d", i, a[i], b[i], out[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CompareColumns on mismatched lengths did not panic")
		}
	}()
	CompareColumns(a[:3], b[:2], nil)
}

func TestAppendColumn(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewString("a")},
		{NewInt(2), Null},
		{NewInt(3), NewString("c")},
	}
	got := AppendColumn(nil, rows, 1)
	want := []Value{NewString("a"), Null, NewString("c")}
	if len(got) != len(want) {
		t.Fatalf("AppendColumn returned %d values", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendColumn[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Appending onto an existing vector keeps the prefix.
	got2 := AppendColumn(got, rows, 0)
	if len(got2) != 6 || got2[0] != NewString("a") || got2[3] != NewInt(1) || got2[5] != NewInt(3) {
		t.Fatalf("AppendColumn extension wrong: %v", got2)
	}
}

func TestBoolIsKindAware(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NewBool(true), true},
		{NewBool(false), false},
		{NewInt(1), true},
		{NewInt(0), false},
		{NewInt(-3), true},
		{NewFloat(1), true}, // the historical asymmetry this contract fixes
		{NewFloat(0), false},
		{NewFloat(math.Copysign(0, -1)), false},
		{NewFloat(math.NaN()), true},
		{Null, false},
		{NewString("true"), false},
		{NewString(""), false},
	}
	for _, c := range cases {
		if got := c.v.Bool(); got != c.want {
			t.Errorf("%v.Bool() = %v, want %v", c.v, got, c.want)
		}
	}
}

package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if got := NewInt(42); got.Kind() != KindInt || got.Int() != 42 {
		t.Fatalf("NewInt: got %v", got)
	}
	if got := NewFloat(2.5); got.Kind() != KindFloat || got.Float() != 2.5 {
		t.Fatalf("NewFloat: got %v", got)
	}
	if got := NewString("ab"); got.Kind() != KindString || got.Str() != "ab" {
		t.Fatalf("NewString: got %v", got)
	}
	if got := NewBool(true); got.Kind() != KindBool || !got.Bool() {
		t.Fatalf("NewBool: got %v", got)
	}
	if got := NewBool(false); got.Bool() {
		t.Fatalf("NewBool(false): got %v", got)
	}
}

func TestValueFloatWidening(t *testing.T) {
	if NewInt(7).Float() != 7.0 {
		t.Fatal("int should widen to float")
	}
	if NewBool(true).Float() != 1.0 {
		t.Fatal("bool should widen to float 1")
	}
	if Null.Float() != 0 {
		t.Fatal("null floats to 0")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.5), NewInt(1), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Fatal("NULL must not equal NULL")
	}
	if Equal(Null, NewInt(0)) {
		t.Fatal("NULL must not equal 0")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Fatal("3 must equal 3.0")
	}
}

func TestHashCrossKindNumericConsistency(t *testing.T) {
	if NewInt(41).Hash() != NewFloat(41).Hash() {
		t.Fatal("41 and 41.0 must hash equal for join correctness")
	}
	if NewString("x").Hash() == NewString("y").Hash() {
		t.Fatal("expected distinct hashes for distinct strings (fnv collision would be astonishing)")
	}
}

func TestHashEqualImpliesEqualHashProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if Equal(va, vb) {
			return va.Hash() == vb.Hash()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := NewFloat(a), NewFloat(b), NewFloat(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-5), "-5"},
		{NewFloat(1.5), "1.5"},
		{NewString("o'hare"), "'o''hare'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v)=%q want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "INTEGER" || KindNull.String() != "NULL" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestByteSize(t *testing.T) {
	if NewInt(1).ByteSize() != 8 {
		t.Fatal("int size")
	}
	if NewString("abc").ByteSize() != 5 {
		t.Fatal("string size = 2+len")
	}
	if Null.ByteSize() != 1 || NewBool(true).ByteSize() != 1 {
		t.Fatal("null/bool size")
	}
}

package sqltypes

import (
	"strings"
	"testing"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Table: "t", Name: "id", Type: KindInt},
		Column{Table: "t", Name: "name", Type: KindString},
		Column{Table: "u", Name: "id", Type: KindInt},
	)
}

func TestColumnIndexQualified(t *testing.T) {
	s := testSchema()
	i, err := s.ColumnIndex("u", "id")
	if err != nil || i != 2 {
		t.Fatalf("got %d,%v want 2,nil", i, err)
	}
	i, err = s.ColumnIndex("t", "ID") // case-insensitive
	if err != nil || i != 0 {
		t.Fatalf("got %d,%v want 0,nil", i, err)
	}
}

func TestColumnIndexUnqualifiedUnique(t *testing.T) {
	s := testSchema()
	i, err := s.ColumnIndex("", "name")
	if err != nil || i != 1 {
		t.Fatalf("got %d,%v want 1,nil", i, err)
	}
}

func TestColumnIndexAmbiguous(t *testing.T) {
	s := testSchema()
	if _, err := s.ColumnIndex("", "id"); err == nil {
		t.Fatal("want ambiguity error for unqualified id")
	} else if !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguous error, got %v", err)
	}
}

func TestColumnIndexUnknown(t *testing.T) {
	s := testSchema()
	if _, err := s.ColumnIndex("", "nope"); err == nil {
		t.Fatal("want unknown-column error")
	}
}

func TestSchemaConcatAndQualifier(t *testing.T) {
	a := NewSchema(Column{Table: "a", Name: "x", Type: KindInt})
	b := NewSchema(Column{Table: "b", Name: "y", Type: KindString})
	j := a.Concat(b)
	if j.Len() != 2 || j.Columns[0].Name != "x" || j.Columns[1].Name != "y" {
		t.Fatalf("concat wrong: %v", j)
	}
	q := j.WithQualifier("z")
	if q.Columns[0].Table != "z" || q.Columns[1].Table != "z" {
		t.Fatalf("qualifier wrong: %v", q)
	}
	// original untouched
	if j.Columns[0].Table != "a" {
		t.Fatal("WithQualifier must copy")
	}
}

func TestRowCloneAndConcat(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Fatal("clone must not alias")
	}
	j := r.Concat(Row{NewBool(true)})
	if len(j) != 3 || !j[2].Bool() {
		t.Fatalf("concat wrong: %v", j)
	}
}

func TestRelationPreviewAndSizes(t *testing.T) {
	s := NewSchema(Column{Table: "t", Name: "id", Type: KindInt})
	rel := NewRelation(s)
	for i := 0; i < 12; i++ {
		rel.Rows = append(rel.Rows, Row{NewInt(int64(i))})
	}
	if rel.Cardinality() != 12 {
		t.Fatal("cardinality")
	}
	if rel.ByteSize() <= 0 {
		t.Fatal("byte size must be positive")
	}
	str := rel.String()
	if !strings.Contains(str, "[12 rows]") || !strings.Contains(str, "...") {
		t.Fatalf("preview wrong: %s", str)
	}
}

func TestColumnQualifiedName(t *testing.T) {
	if (Column{Name: "x"}).QualifiedName() != "x" {
		t.Fatal("unqualified")
	}
	if (Column{Table: "t", Name: "x"}).QualifiedName() != "t.x" {
		t.Fatal("qualified")
	}
}

package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func makeRows(n int) (*sqltypes.Schema, []sqltypes.Row) {
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "t", Name: "id", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "t", Name: "v", Type: sqltypes.KindFloat},
		sqltypes.Column{Table: "t", Name: "s", Type: sqltypes.KindString},
	)
	rows := make([]sqltypes.Row, 0, n)
	for i := 0; i < n; i++ {
		s := sqltypes.NewString("cat")
		if i%2 == 1 {
			s = sqltypes.NewString("dog")
		}
		v := sqltypes.NewFloat(float64(i))
		if i%10 == 0 {
			v = sqltypes.Null
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i)), v, s})
	}
	return schema, rows
}

func TestCollectBasics(t *testing.T) {
	schema, rows := makeRows(100)
	ts := Collect("t", schema, rows)
	if ts.RowCount != 100 {
		t.Fatalf("rowcount %d", ts.RowCount)
	}
	id := ts.Column("id")
	if id == nil || id.Distinct != 100 || id.Min.Int() != 0 || id.Max.Int() != 99 {
		t.Fatalf("id stats: %+v", id)
	}
	v := ts.Column("v")
	if v.NullCount != 10 {
		t.Fatalf("null count %d", v.NullCount)
	}
	if nf := v.NullFraction(); nf != 0.1 {
		t.Fatalf("null fraction %f", nf)
	}
	s := ts.Column("s")
	if s.Distinct != 2 {
		t.Fatalf("string distinct %d", s.Distinct)
	}
	if s.Hist != nil {
		t.Fatal("string column must not get a histogram")
	}
	if ts.AvgRowBytes <= 0 {
		t.Fatal("avg row bytes")
	}
	if ts.Column("zzz") != nil {
		t.Fatal("unknown column should be nil")
	}
}

func TestCollectEmpty(t *testing.T) {
	schema, _ := makeRows(0)
	ts := Collect("t", schema, nil)
	if ts.RowCount != 0 || ts.AvgRowBytes != 0 {
		t.Fatal("empty table stats")
	}
	if ts.Column("v").NullFraction() != 0 {
		t.Fatal("empty null fraction")
	}
}

func TestCloneIsDeep(t *testing.T) {
	schema, rows := makeRows(50)
	ts := Collect("t", schema, rows)
	c := ts.Clone()
	c.Columns["id"].Distinct = 1
	c.Columns["id"].Hist.Buckets[0].Count = 12345
	if ts.Columns["id"].Distinct == 1 {
		t.Fatal("clone aliases column stats")
	}
	if ts.Columns["id"].Hist.Buckets[0].Count == 12345 {
		t.Fatal("clone aliases histogram buckets")
	}
	var nilTS *TableStats
	if nilTS.Clone() != nil {
		t.Fatal("nil clone")
	}
	if nilTS.Column("x") != nil {
		t.Fatal("nil column")
	}
}

func TestHistogramSelectivityUniform(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h := BuildHistogram(vals, 32)
	cases := []struct {
		x    float64
		want float64
		tol  float64
	}{
		{-1, 0, 0},
		{999, 1, 0},
		{2000, 1, 0},
		{499.5, 0.5, 0.05},
		{100, 0.1, 0.05},
		{900, 0.9, 0.05},
	}
	for _, c := range cases {
		got := h.SelectivityLE(c.x)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("SelectivityLE(%g)=%g want %g±%g", c.x, got, c.want, c.tol)
		}
	}
	if gt := h.SelectivityGT(100); gt < 0.85 || gt > 0.95 {
		t.Errorf("SelectivityGT(100)=%g", gt)
	}
	if b := h.SelectivityBetween(200, 400); b < 0.15 || b > 0.25 {
		t.Errorf("Between(200,400)=%g", b)
	}
	if h.SelectivityBetween(400, 200) != 0 {
		t.Error("inverted between must be 0")
	}
}

func TestHistogramSkewed(t *testing.T) {
	// 90% of values are 0, the rest uniform in [1,100].
	var vals []float64
	for i := 0; i < 900; i++ {
		vals = append(vals, 0)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(1+i))
	}
	h := BuildHistogram(vals, 16)
	if le := h.SelectivityLE(0); le < 0.85 {
		t.Errorf("skew: SelectivityLE(0)=%g want >=0.85", le)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	if BuildHistogram(nil, 8) != nil {
		t.Fatal("empty histogram should be nil")
	}
	if BuildHistogram([]float64{1}, 0) != nil {
		t.Fatal("zero buckets should be nil")
	}
	var h *Histogram
	if h.SelectivityLE(5) != 0.5 {
		t.Fatal("nil hist default")
	}
	if h.String() != "hist(nil)" {
		t.Fatal("nil hist string")
	}
}

func TestHistogramMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = r.NormFloat64() * 100
	}
	h := BuildHistogram(vals, 20)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return h.SelectivityLE(a) <= h.SelectivityLE(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testProvider(t *testing.T, n int) MapProvider {
	t.Helper()
	schema, rows := makeRows(n)
	return MapProvider{"t": Collect("t", schema, rows)}
}

func sel(t *testing.T, provider StatsProvider, src string) float64 {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Selectivity(e, provider)
}

func TestSelectivityEquality(t *testing.T) {
	p := testProvider(t, 1000)
	got := sel(t, p, "t.id = 5")
	if got < 0.0005 || got > 0.002 {
		t.Errorf("eq selectivity %g want ~1/1000", got)
	}
	// Flipped literal side.
	if got2 := sel(t, p, "5 = t.id"); got2 != got {
		t.Errorf("flip: %g vs %g", got2, got)
	}
}

func TestSelectivityRange(t *testing.T) {
	p := testProvider(t, 1000)
	got := sel(t, p, "t.id > 900")
	if got < 0.05 || got > 0.15 {
		t.Errorf("range selectivity %g want ~0.1", got)
	}
	flipped := sel(t, p, "900 < t.id")
	if flipped < 0.05 || flipped > 0.15 {
		t.Errorf("flipped range %g", flipped)
	}
}

func TestSelectivityConjunctionDisjunction(t *testing.T) {
	p := testProvider(t, 1000)
	and := sel(t, p, "t.id > 500 AND t.s = 'cat'")
	lone := sel(t, p, "t.id > 500")
	if and >= lone {
		t.Errorf("AND should shrink: %g vs %g", and, lone)
	}
	or := sel(t, p, "t.id > 500 OR t.s = 'cat'")
	if or <= lone {
		t.Errorf("OR should grow: %g vs %g", or, lone)
	}
	if or > 1 {
		t.Errorf("OR capped: %g", or)
	}
}

func TestSelectivityNotInBetweenLikeNull(t *testing.T) {
	p := testProvider(t, 1000)
	if got := sel(t, p, "NOT t.id > 900"); got < 0.8 {
		t.Errorf("NOT: %g", got)
	}
	in := sel(t, p, "t.id IN (1, 2, 3)")
	if in < 0.002 || in > 0.01 {
		t.Errorf("IN: %g want ~3/1000", in)
	}
	btw := sel(t, p, "t.id BETWEEN 100 AND 300")
	if btw < 0.15 || btw > 0.25 {
		t.Errorf("BETWEEN: %g want ~0.2", btw)
	}
	if got := sel(t, p, "t.s LIKE 'c%'"); got != DefaultLikeSelectivity {
		t.Errorf("LIKE default: %g", got)
	}
	nullSel := sel(t, p, "t.v IS NULL")
	if nullSel < 0.05 || nullSel > 0.15 {
		t.Errorf("IS NULL: %g want ~0.1", nullSel)
	}
	if got := sel(t, p, "t.v IS NOT NULL"); got < 0.85 {
		t.Errorf("IS NOT NULL: %g", got)
	}
}

func TestSelectivityUnknownColumnDefaults(t *testing.T) {
	p := testProvider(t, 100)
	if got := sel(t, p, "x.q = 1"); got != DefaultEqSelectivity {
		t.Errorf("unknown eq: %g", got)
	}
	if got := sel(t, p, "x.q > 1"); got != DefaultRangeSelectivity {
		t.Errorf("unknown range: %g", got)
	}
}

func TestSelectivityLiteralBool(t *testing.T) {
	p := testProvider(t, 10)
	if got := sel(t, p, "TRUE"); got != 1 {
		t.Errorf("TRUE: %g", got)
	}
	if got := sel(t, p, "FALSE"); got > 1e-5 {
		t.Errorf("FALSE: %g", got)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	p := testProvider(t, 300)
	f := func(x int64) bool {
		e := &sqlparser.BinaryExpr{
			Op:    sqlparser.OpGt,
			Left:  &sqlparser.ColumnRef{Table: "t", Name: "id"},
			Right: &sqlparser.Literal{Val: sqltypes.NewInt(x % 1000)},
		}
		s := Selectivity(e, p)
		return s > 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCardinality(t *testing.T) {
	if got := JoinCardinality(1000, 1000, 1000, 1000); got != 1000 {
		t.Errorf("pk-fk join: %d", got)
	}
	if got := JoinCardinality(0, 10, 5, 5); got != 0 {
		t.Errorf("empty join: %d", got)
	}
	if got := JoinCardinality(10, 10, 0, 0); got < 1 || got > 100 {
		t.Errorf("no-distinct join: %d", got)
	}
	if got := JoinCardinality(2, 2, 100, 100); got != 1 {
		t.Errorf("floor at 1: %d", got)
	}
}

func TestGroupCardinality(t *testing.T) {
	if got := GroupCardinality(1000, []int64{10}); got != 10 {
		t.Errorf("10 groups: %d", got)
	}
	if got := GroupCardinality(1000, []int64{100, 100}); got != 1000 {
		t.Errorf("capped at input: %d", got)
	}
	if got := GroupCardinality(1000, nil); got != 1 {
		t.Errorf("scalar agg: %d", got)
	}
	if got := GroupCardinality(0, []int64{10}); got != 0 {
		t.Errorf("empty input: %d", got)
	}
	if got := GroupCardinality(50, []int64{0}); got <= 0 {
		t.Errorf("unknown distinct: %d", got)
	}
}

func TestColumnOpColumnSelectivity(t *testing.T) {
	p := testProvider(t, 1000)
	got := sel(t, p, "t.id = t.v")
	if got < 0.0005 || got > 0.002 {
		t.Errorf("col=col: %g want ~1/1000", got)
	}
	if got := sel(t, p, "t.id < t.v"); got != DefaultRangeSelectivity {
		t.Errorf("col<col: %g", got)
	}
}

// Package stats implements table and column statistics — row counts,
// min/max, distinct counts, null counts and equi-depth histograms — together
// with the selectivity and cardinality estimation used by both the remote
// servers' local cost models and the integrator's global cost model. These
// are the "database statistics" the paper says cost estimation is usually
// based on; QCC's whole premise is that they do NOT capture load or network
// conditions.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sqltypes"
)

// DefaultHistogramBuckets is the equi-depth bucket count used by Collect.
const DefaultHistogramBuckets = 32

// ColumnStats summarizes one column.
type ColumnStats struct {
	Name      string
	Type      sqltypes.Kind
	RowCount  int64
	NullCount int64
	Distinct  int64
	Min, Max  sqltypes.Value
	Hist      *Histogram // nil for non-numeric columns
}

// NullFraction returns the fraction of NULL values.
func (c *ColumnStats) NullFraction() float64 {
	if c.RowCount == 0 {
		return 0
	}
	return float64(c.NullCount) / float64(c.RowCount)
}

// TableStats summarizes one table.
type TableStats struct {
	Table       string
	RowCount    int64
	AvgRowBytes float64
	Columns     map[string]*ColumnStats
}

// Column returns stats for a column by (case-sensitive) name, or nil.
func (t *TableStats) Column(name string) *ColumnStats {
	if t == nil {
		return nil
	}
	return t.Columns[name]
}

// Clone returns a deep copy; used by the simulated federated system, which
// keeps statistics without data (§2 of the paper).
func (t *TableStats) Clone() *TableStats {
	if t == nil {
		return nil
	}
	out := &TableStats{Table: t.Table, RowCount: t.RowCount, AvgRowBytes: t.AvgRowBytes, Columns: map[string]*ColumnStats{}}
	for k, v := range t.Columns {
		cc := *v
		if v.Hist != nil {
			h := *v.Hist
			h.Buckets = append([]Bucket(nil), v.Hist.Buckets...)
			cc.Hist = &h
		}
		out.Columns[k] = &cc
	}
	return out
}

// Collect computes statistics over a materialized table.
func Collect(table string, schema *sqltypes.Schema, rows []sqltypes.Row) *TableStats {
	ts := &TableStats{Table: table, RowCount: int64(len(rows)), Columns: map[string]*ColumnStats{}}
	totalBytes := 0
	for _, r := range rows {
		totalBytes += r.ByteSize()
	}
	if len(rows) > 0 {
		ts.AvgRowBytes = float64(totalBytes) / float64(len(rows))
	}
	for ci, col := range schema.Columns {
		cs := &ColumnStats{Name: col.Name, Type: col.Type, RowCount: int64(len(rows))}
		distinct := make(map[uint64]struct{})
		var numeric []float64
		for _, r := range rows {
			v := r[ci]
			if v.IsNull() {
				cs.NullCount++
				continue
			}
			distinct[v.Hash()] = struct{}{}
			if cs.Min.IsNull() || sqltypes.Compare(v, cs.Min) < 0 {
				cs.Min = v
			}
			if cs.Max.IsNull() || sqltypes.Compare(v, cs.Max) > 0 {
				cs.Max = v
			}
			if v.IsNumeric() {
				numeric = append(numeric, v.Float())
			}
		}
		cs.Distinct = int64(len(distinct))
		if len(numeric) > 0 && (col.Type == sqltypes.KindInt || col.Type == sqltypes.KindFloat) {
			cs.Hist = BuildHistogram(numeric, DefaultHistogramBuckets)
		}
		ts.Columns[col.Name] = cs
	}
	return ts
}

// Bucket is one equi-depth histogram bucket: values in (prev.Upper, Upper]
// with Count entries.
type Bucket struct {
	Upper float64
	Count int64
}

// Histogram is an equi-depth histogram over a numeric column.
type Histogram struct {
	Lo, Hi  float64
	Total   int64
	Buckets []Bucket
}

// BuildHistogram builds an equi-depth histogram with at most buckets buckets.
func BuildHistogram(values []float64, buckets int) *Histogram {
	if len(values) == 0 || buckets <= 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	h := &Histogram{Lo: sorted[0], Hi: sorted[len(sorted)-1], Total: int64(len(sorted))}
	per := len(sorted) / buckets
	if per == 0 {
		per = 1
	}
	for i := per - 1; i < len(sorted); i += per {
		upper := sorted[i]
		// Extend the last bucket to the true max.
		if i+per >= len(sorted) {
			upper = sorted[len(sorted)-1]
			i = len(sorted) - 1
		}
		count := int64(per)
		if len(h.Buckets) > 0 && h.Buckets[len(h.Buckets)-1].Upper == upper {
			h.Buckets[len(h.Buckets)-1].Count += count
			continue
		}
		h.Buckets = append(h.Buckets, Bucket{Upper: upper, Count: count})
	}
	// Fix total accounting: distribute remainder into the last bucket.
	var sum int64
	for _, b := range h.Buckets {
		sum += b.Count
	}
	if diff := h.Total - sum; diff != 0 && len(h.Buckets) > 0 {
		h.Buckets[len(h.Buckets)-1].Count += diff
	}
	return h
}

// SelectivityLE estimates P(col <= x).
func (h *Histogram) SelectivityLE(x float64) float64 {
	if h == nil || h.Total == 0 {
		return 0.5
	}
	if x < h.Lo {
		return 0
	}
	if x >= h.Hi {
		return 1
	}
	var cum int64
	lower := h.Lo
	for _, b := range h.Buckets {
		if x >= b.Upper {
			cum += b.Count
			lower = b.Upper
			continue
		}
		// Linear interpolation within the bucket.
		width := b.Upper - lower
		frac := 1.0
		if width > 0 {
			frac = (x - lower) / width
			frac = math.Max(0, math.Min(1, frac))
		}
		cum += int64(frac * float64(b.Count))
		break
	}
	return float64(cum) / float64(h.Total)
}

// SelectivityGT estimates P(col > x).
func (h *Histogram) SelectivityGT(x float64) float64 { return 1 - h.SelectivityLE(x) }

// SelectivityBetween estimates P(lo <= col <= hi).
func (h *Histogram) SelectivityBetween(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	s := h.SelectivityLE(hi) - h.SelectivityLE(lo)
	if s < 0 {
		s = 0
	}
	return s
}

// String renders the histogram compactly.
func (h *Histogram) String() string {
	if h == nil {
		return "hist(nil)"
	}
	return fmt.Sprintf("hist[%g..%g n=%d b=%d]", h.Lo, h.Hi, h.Total, len(h.Buckets))
}

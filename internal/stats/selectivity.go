package stats

import (
	"math"

	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

// Default selectivities for predicates the estimator cannot analyze; values
// follow the classic System R conventions.
const (
	DefaultEqSelectivity    = 0.005
	DefaultRangeSelectivity = 1.0 / 3.0
	DefaultLikeSelectivity  = 0.1
	DefaultSelectivity      = 0.25
)

// StatsProvider resolves the statistics for a table referenced by its
// effective (aliased) name in a query.
type StatsProvider interface {
	TableStats(effectiveName string) *TableStats
}

// MapProvider is a StatsProvider backed by a map keyed by effective name.
type MapProvider map[string]*TableStats

// TableStats implements StatsProvider.
func (m MapProvider) TableStats(name string) *TableStats { return m[name] }

// Selectivity estimates the fraction of rows satisfying pred. The provider
// maps table qualifiers to statistics; unqualified or unknown columns fall
// back to defaults. Estimates never leave (0, 1].
func Selectivity(pred sqlparser.Expr, provider StatsProvider) float64 {
	s := selectivity(pred, provider)
	if s <= 0 {
		s = 1e-6
	}
	if s > 1 {
		s = 1
	}
	return s
}

func selectivity(pred sqlparser.Expr, p StatsProvider) float64 {
	switch e := pred.(type) {
	case *sqlparser.Literal:
		if e.Val.Kind() == sqltypes.KindBool {
			if e.Val.Bool() {
				return 1
			}
			return 0
		}
		return 1
	case *sqlparser.BinaryExpr:
		switch e.Op {
		case sqlparser.OpAnd:
			return selectivity(e.Left, p) * selectivity(e.Right, p)
		case sqlparser.OpOr:
			l, r := selectivity(e.Left, p), selectivity(e.Right, p)
			return l + r - l*r
		}
		if e.Op.IsComparison() {
			return comparisonSelectivity(e, p)
		}
		return 1
	case *sqlparser.NotExpr:
		return 1 - selectivity(e.Inner, p)
	case *sqlparser.IsNullExpr:
		if cs := columnStats(e.Inner, p); cs != nil {
			f := cs.NullFraction()
			if e.Negate {
				return 1 - f
			}
			return f
		}
		if e.Negate {
			return 0.95
		}
		return 0.05
	case *sqlparser.InExpr:
		base := DefaultEqSelectivity
		if cs := columnStats(e.Needle, p); cs != nil && cs.Distinct > 0 {
			base = 1 / float64(cs.Distinct)
		}
		s := base * float64(len(e.List))
		if e.Negate {
			s = 1 - s
		}
		return s
	case *sqlparser.BetweenExpr:
		s := betweenSelectivity(e, p)
		if e.Negate {
			s = 1 - s
		}
		return s
	case *sqlparser.LikeExpr:
		s := DefaultLikeSelectivity
		if e.Negate {
			s = 1 - s
		}
		return s
	default:
		return DefaultSelectivity
	}
}

// comparisonSelectivity handles col op literal (either side) and col op col.
func comparisonSelectivity(e *sqlparser.BinaryExpr, p StatsProvider) float64 {
	colL, litL := asColumn(e.Left), asLiteral(e.Left)
	colR, litR := asColumn(e.Right), asLiteral(e.Right)
	// column op column — a join-ish predicate: use 1/max(distinct).
	if colL != nil && colR != nil {
		csL, csR := lookup(colL, p), lookup(colR, p)
		dl, dr := int64(0), int64(0)
		if csL != nil {
			dl = csL.Distinct
		}
		if csR != nil {
			dr = csR.Distinct
		}
		d := dl
		if dr > d {
			d = dr
		}
		if e.Op == sqlparser.OpEq && d > 0 {
			return 1 / float64(d)
		}
		return DefaultRangeSelectivity
	}
	var col *sqlparser.ColumnRef
	var lit *sqlparser.Literal
	op := e.Op
	switch {
	case colL != nil && litR != nil:
		col, lit = colL, litR
	case colR != nil && litL != nil:
		col, lit = colR, litL
		op = flipOp(op)
	default:
		return DefaultRangeSelectivity
	}
	cs := lookup(col, p)
	if cs == nil {
		if op == sqlparser.OpEq {
			return DefaultEqSelectivity
		}
		return DefaultRangeSelectivity
	}
	switch op {
	case sqlparser.OpEq:
		if cs.Distinct > 0 {
			return 1 / float64(cs.Distinct)
		}
		return DefaultEqSelectivity
	case sqlparser.OpNe:
		if cs.Distinct > 0 {
			return 1 - 1/float64(cs.Distinct)
		}
		return 1 - DefaultEqSelectivity
	}
	if !lit.Val.IsNumeric() || cs.Hist == nil {
		return DefaultRangeSelectivity
	}
	x := lit.Val.Float()
	switch op {
	case sqlparser.OpLt, sqlparser.OpLe:
		return cs.Hist.SelectivityLE(x)
	case sqlparser.OpGt, sqlparser.OpGe:
		return cs.Hist.SelectivityGT(x)
	}
	return DefaultRangeSelectivity
}

func betweenSelectivity(e *sqlparser.BetweenExpr, p StatsProvider) float64 {
	col := asColumn(e.Subject)
	lo, hi := asLiteral(e.Lo), asLiteral(e.Hi)
	if col == nil || lo == nil || hi == nil || !lo.Val.IsNumeric() || !hi.Val.IsNumeric() {
		return DefaultRangeSelectivity * DefaultRangeSelectivity
	}
	cs := lookup(col, p)
	if cs == nil || cs.Hist == nil {
		return DefaultRangeSelectivity * DefaultRangeSelectivity
	}
	return cs.Hist.SelectivityBetween(lo.Val.Float(), hi.Val.Float())
}

func flipOp(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default:
		return op
	}
}

func asColumn(e sqlparser.Expr) *sqlparser.ColumnRef {
	c, _ := e.(*sqlparser.ColumnRef)
	return c
}

func asLiteral(e sqlparser.Expr) *sqlparser.Literal {
	l, _ := e.(*sqlparser.Literal)
	return l
}

func columnStats(e sqlparser.Expr, p StatsProvider) *ColumnStats {
	if c := asColumn(e); c != nil {
		return lookup(c, p)
	}
	return nil
}

func lookup(c *sqlparser.ColumnRef, p StatsProvider) *ColumnStats {
	if p == nil {
		return nil
	}
	if c.Table != "" {
		return p.TableStats(c.Table).Column(c.Name)
	}
	return nil
}

// JoinCardinality estimates |L ⋈ R| on an equality key using the classic
// formula |L|·|R| / max(distinct(Lkey), distinct(Rkey)).
func JoinCardinality(left, right int64, leftDistinct, rightDistinct int64) int64 {
	if left == 0 || right == 0 {
		return 0
	}
	d := leftDistinct
	if rightDistinct > d {
		d = rightDistinct
	}
	if d <= 0 {
		d = int64(math.Max(float64(left), float64(right)))
	}
	card := float64(left) * float64(right) / float64(d)
	if card < 1 {
		card = 1
	}
	return int64(card)
}

// GroupCardinality estimates the number of groups produced by grouping rows
// on keys with the given distinct counts, capped by the input cardinality.
func GroupCardinality(input int64, keyDistincts []int64) int64 {
	if input == 0 {
		return 0
	}
	if len(keyDistincts) == 0 {
		return 1
	}
	groups := int64(1)
	for _, d := range keyDistincts {
		if d <= 0 {
			d = 10
		}
		if groups > input/d+1 {
			// avoid overflow; cap early
			groups = input
			break
		}
		groups *= d
	}
	if groups > input {
		groups = input
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

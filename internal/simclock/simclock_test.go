package simclock

import (
	"testing"
)

func TestAdvanceRunsDueEventsInOrder(t *testing.T) {
	c := New()
	var got []int
	c.ScheduleAt(30, func(Time) { got = append(got, 3) })
	c.ScheduleAt(10, func(Time) { got = append(got, 1) })
	c.ScheduleAt(20, func(Time) { got = append(got, 2) })
	c.Advance(25)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("order: %v", got)
	}
	if c.Now() != 25 {
		t.Fatalf("now: %v", c.Now())
	}
	c.Advance(10)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("final: %v", got)
	}
}

func TestEqualTimesFIFOTiebreak(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.ScheduleAt(10, func(Time) { got = append(got, i) })
	}
	c.Advance(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("fifo: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	c := New()
	ran := false
	cancel := c.ScheduleAt(5, func(Time) { ran = true })
	cancel()
	c.Advance(10)
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestScheduleAfterRelative(t *testing.T) {
	c := New()
	c.Advance(100)
	var at Time
	c.ScheduleAfter(50, func(now Time) { at = now })
	c.Advance(50)
	if at != 150 {
		t.Fatalf("at: %v", at)
	}
}

func TestEventSchedulingChain(t *testing.T) {
	c := New()
	var times []Time
	c.ScheduleAt(10, func(now Time) {
		times = append(times, now)
		c.ScheduleAfter(5, func(now Time) { times = append(times, now) })
	})
	c.Advance(20)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("chain: %v", times)
	}
}

func TestEveryFixedCadence(t *testing.T) {
	c := New()
	var ticks []Time
	c.Every(10, func(now Time) Time {
		ticks = append(ticks, now)
		return 0
	})
	c.Advance(35)
	if len(ticks) != 3 || ticks[0] != 10 || ticks[2] != 30 {
		t.Fatalf("ticks: %v", ticks)
	}
}

func TestEveryDynamicCadenceAndStop(t *testing.T) {
	c := New()
	var ticks []Time
	c.Every(10, func(now Time) Time {
		ticks = append(ticks, now)
		if len(ticks) == 2 {
			return -1 // stop
		}
		return 20 // slow down
	})
	c.Advance(1000)
	if len(ticks) != 2 || ticks[0] != 10 || ticks[1] != 30 {
		t.Fatalf("dynamic ticks: %v", ticks)
	}
}

func TestEveryCancel(t *testing.T) {
	c := New()
	n := 0
	cancel := c.Every(10, func(Time) Time { n++; return 0 })
	c.Advance(25)
	cancel()
	c.Advance(100)
	if n != 2 {
		t.Fatalf("ticks after cancel: %d", n)
	}
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	c := New()
	c.Advance(50)
	c.AdvanceTo(10)
	if c.Now() != 50 {
		t.Fatalf("now went backwards: %v", c.Now())
	}
}

func TestPastEventRunsOnNextAdvance(t *testing.T) {
	c := New()
	c.Advance(100)
	ran := false
	c.ScheduleAt(10, func(Time) { ran = true })
	c.Advance(1)
	if !ran {
		t.Fatal("past event should fire")
	}
}

func TestTimeString(t *testing.T) {
	if Time(1.5).String() != "1.500ms" {
		t.Fatalf("got %s", Time(1.5))
	}
}

func TestPending(t *testing.T) {
	c := New()
	c.ScheduleAt(10, func(Time) {})
	if c.Pending() != 1 {
		t.Fatal("pending")
	}
	c.Advance(10)
	if c.Pending() != 0 {
		t.Fatal("drained")
	}
}

// Package simclock provides the virtual clock and event scheduler that every
// latency in the federation is charged to: network transfer times, remote
// queueing and service times, and QCC's periodic daemons (availability
// probes, recalibration cycles). Using virtual time makes every experiment
// deterministic and lets the full paper evaluation run in milliseconds of
// wall time.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
)

// Time is simulated time in milliseconds since experiment start.
type Time float64

// String renders the time.
func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)) }

// Clock is a manually-advanced virtual clock with an event queue.
// It is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	now    Time
	events eventHeap
	seq    int64
	// reserved is the charge watermark: the end of the latest interval
	// handed out by Charge. It never trails now.
	reserved Time
}

// New returns a clock at time zero.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// event is one scheduled callback.
type event struct {
	at  Time
	seq int64 // FIFO tiebreak for equal times
	fn  func(now Time)
	// id allows cancellation.
	id        int64
	cancelled *bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Cancel revokes a scheduled event.
type Cancel func()

// ScheduleAt registers fn to run when the clock reaches at. Events scheduled
// in the past run at the next Advance. The returned Cancel revokes the event.
func (c *Clock) ScheduleAt(at Time, fn func(now Time)) Cancel {
	c.mu.Lock()
	defer c.mu.Unlock()
	cancelled := false
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn, cancelled: &cancelled})
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		cancelled = true
	}
}

// ScheduleAfter registers fn to run delay milliseconds from now.
func (c *Clock) ScheduleAfter(delay Time, fn func(now Time)) Cancel {
	return c.ScheduleAt(c.Now()+delay, fn)
}

// Every registers fn to run every interval, starting one interval from now.
// The callback may adjust its own cadence by returning the next interval;
// returning 0 keeps the current interval, returning a negative value stops
// the series. This drives §3.4's dynamic adjustment of calibration cycles.
// The returned Cancel is safe to invoke from any goroutine, including
// concurrently with an Advance that is firing the series.
func (c *Clock) Every(interval Time, fn func(now Time) Time) Cancel {
	var mu sync.Mutex
	stopped := false
	isStopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return stopped
	}
	var schedule func(iv Time)
	schedule = func(iv Time) {
		c.ScheduleAfter(iv, func(now Time) {
			if isStopped() {
				return
			}
			next := fn(now)
			if next < 0 {
				return
			}
			if next == 0 {
				next = iv
			}
			schedule(next)
		})
	}
	schedule(interval)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
	}
}

// Charge atomically reserves a virtual-time interval of length delta and
// advances the clock to its end, running every event that falls inside it.
// Concurrent charges serialize: each caller receives a distinct interval
// [start, end) stacked after all previously reserved ones, so the final
// clock value is the sum of all charged durations regardless of goroutine
// interleaving. This replaces the racy Now()+Advance() pair: two goroutines
// that each charged 5ms from now=0 end the clock at 10ms, not 5ms.
func (c *Clock) Charge(delta Time) (start, end Time) {
	if delta < 0 {
		delta = 0
	}
	c.mu.Lock()
	if c.reserved < c.now {
		c.reserved = c.now
	}
	start = c.reserved
	end = start + delta
	c.reserved = end
	c.mu.Unlock()
	c.AdvanceTo(end)
	return start, end
}

// Advance moves the clock forward by delta, running every event whose time
// falls within the window, in timestamp order. Events scheduled by callbacks
// inside the window also run.
func (c *Clock) Advance(delta Time) {
	c.AdvanceTo(c.Now() + delta)
}

// AdvanceTo moves the clock to target (no-op when target is in the past).
func (c *Clock) AdvanceTo(target Time) {
	for {
		c.mu.Lock()
		if len(c.events) == 0 || c.events[0].at > target {
			if target > c.now {
				c.now = target
			}
			c.mu.Unlock()
			return
		}
		e := heap.Pop(&c.events).(*event)
		if *e.cancelled {
			c.mu.Unlock()
			continue
		}
		if e.at > c.now {
			c.now = e.at
		}
		now := c.now
		c.mu.Unlock()
		e.fn(now)
	}
}

// NextEvent reports the earliest pending event's time, discarding cancelled
// events at the head of the queue. Drivers that own the clock use it to step
// a simulation from event to event instead of guessing a tick size.
func (c *Clock) NextEvent() (Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.events) > 0 && *c.events[0].cancelled {
		heap.Pop(&c.events)
	}
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].at, true
}

// Pending returns the number of queued events (including cancelled ones not
// yet reaped); for tests.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

package simclock

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

func TestChargeStacksSequentially(t *testing.T) {
	c := New()
	s1, e1 := c.Charge(10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first charge [%v,%v], want [0,10]", s1, e1)
	}
	s2, e2 := c.Charge(5)
	if s2 != 10 || e2 != 15 {
		t.Fatalf("second charge [%v,%v], want [10,15]", s2, e2)
	}
	if c.Now() != 15 {
		t.Fatalf("clock %v, want 15", c.Now())
	}
}

func TestChargeNegativeClampsToZero(t *testing.T) {
	c := New()
	s, e := c.Charge(-3)
	if s != 0 || e != 0 || c.Now() != 0 {
		t.Fatalf("negative charge [%v,%v] now %v, want all zero", s, e, c.Now())
	}
}

// TestChargeConcurrentDisjointIntervals is the Charge contract under
// contention: every reservation gets a disjoint interval and the final clock
// is the exact sum of the deltas, independent of interleaving.
func TestChargeConcurrentDisjointIntervals(t *testing.T) {
	c := New()
	const n = 64
	type iv struct{ s, e Time }
	ivs := make([]iv, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, e := c.Charge(Time(i + 1))
			ivs[i] = iv{s, e}
		}(i)
	}
	wg.Wait()
	var sum Time
	for i := 0; i < n; i++ {
		sum += Time(i + 1)
		if ivs[i].e-ivs[i].s != Time(i+1) {
			t.Fatalf("charge %d got width %v", i, ivs[i].e-ivs[i].s)
		}
		for j := 0; j < i; j++ {
			if ivs[i].s < ivs[j].e && ivs[j].s < ivs[i].e {
				t.Fatalf("intervals overlap: %v and %v", ivs[i], ivs[j])
			}
		}
	}
	if math.Abs(float64(c.Now()-sum)) > 1e-9 {
		t.Fatalf("clock %v, want %v", c.Now(), sum)
	}
}

func TestChargeRunsDueEvents(t *testing.T) {
	c := New()
	var fired []Time
	c.ScheduleAt(5, func(now Time) { fired = append(fired, now) })
	c.Charge(10)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("event fired %v, want once at 5", fired)
	}
}

func TestChargeInterleavesWithAdvance(t *testing.T) {
	c := New()
	c.AdvanceTo(100)
	s, e := c.Charge(10)
	if s != 100 || e != 110 {
		t.Fatalf("charge after advance [%v,%v], want [100,110]", s, e)
	}
}

// TestEveryCancelConcurrent cancels a ticker while another goroutine is
// advancing the clock; under -race this pins down the stopped-flag guard.
func TestEveryCancelConcurrent(t *testing.T) {
	c := New()
	var mu sync.Mutex
	ticks := 0
	cancel := c.Every(1, func(now Time) Time {
		mu.Lock()
		ticks++
		mu.Unlock()
		return 0
	})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Charge(1)
		}
	}()
	go func() {
		defer wg.Done()
		cancel()
	}()
	wg.Wait()
	mu.Lock()
	after := ticks
	mu.Unlock()
	c.AdvanceTo(c.Now() + 10)
	mu.Lock()
	final := ticks
	mu.Unlock()
	if final != after {
		t.Fatalf("ticker fired %d more times after cancel settled", final-after)
	}
}

func TestWithDeadlineAndCheck(t *testing.T) {
	ctx := WithDeadline(context.Background(), 100)
	if b, ok := DeadlineFrom(ctx); !ok || b != 100 {
		t.Fatalf("DeadlineFrom = %v, %v", b, ok)
	}
	if err := CheckDeadline(ctx, 100); err != nil {
		t.Fatalf("at-budget must pass: %v", err)
	}
	err := CheckDeadline(ctx, 101)
	var de *ErrDeadlineExceeded
	if !errors.As(err, &de) || de.Budget != 100 || de.Observed != 101 {
		t.Fatalf("over-budget error: %v", err)
	}
}

func TestWithDeadlineNonPositiveIsUnlimited(t *testing.T) {
	ctx := WithDeadline(context.Background(), 0)
	if _, ok := DeadlineFrom(ctx); ok {
		t.Fatal("zero budget must not install a deadline")
	}
	if err := CheckDeadline(ctx, 1e12); err != nil {
		t.Fatalf("no deadline must never fail: %v", err)
	}
}

package simclock

import (
	"context"
	"errors"
	"fmt"
)

// Per-fragment deadlines ride on context.Context values rather than the
// standard context deadline machinery: wall-clock deadlines are meaningless
// in a simulation where all latency is charged to the virtual clock. The
// dispatch layer stamps the context with a virtual-time budget — the maximum
// virtual response time the dispatch may consume — and the layer that knows
// the observed response time checks it. Budgets are checked, not fired:
// virtual time only materializes when work completes.

type deadlineKey struct{}

// ErrDeadline is the sentinel every virtual-time deadline expiry matches:
// errors.Is(err, simclock.ErrDeadline) holds for fragment budget blowouts
// (*ErrDeadlineExceeded) and admission queue-deadline sheds alike, so callers
// can classify "ran out of virtual time" without string matching or knowing
// which layer imposed the deadline.
var ErrDeadline = errors.New("simclock: virtual deadline exceeded")

// ErrDeadlineExceeded reports that a dispatch blew its virtual-time budget.
type ErrDeadlineExceeded struct {
	// Budget is the virtual response time the dispatch was allowed.
	Budget Time
	// Observed is the virtual response time the work actually took.
	Observed Time
}

// Error implements error.
func (e *ErrDeadlineExceeded) Error() string {
	return fmt.Sprintf("simclock: virtual deadline exceeded (budget %s, observed %s)", e.Budget, e.Observed)
}

// Unwrap makes every budget blowout errors.Is-match ErrDeadline.
func (e *ErrDeadlineExceeded) Unwrap() error { return ErrDeadline }

// WithDeadline returns a context carrying a per-dispatch virtual-time budget.
// Non-positive budgets are ignored (no deadline).
func WithDeadline(ctx context.Context, budget Time) context.Context {
	if budget <= 0 {
		return ctx
	}
	return context.WithValue(ctx, deadlineKey{}, budget)
}

// DeadlineFrom extracts the virtual-time budget, if any.
func DeadlineFrom(ctx context.Context) (Time, bool) {
	budget, ok := ctx.Value(deadlineKey{}).(Time)
	return budget, ok
}

// CheckDeadline returns an *ErrDeadlineExceeded when the context carries a
// virtual-time budget smaller than the observed response time. A context
// without a budget always passes.
func CheckDeadline(ctx context.Context, observed Time) error {
	budget, ok := DeadlineFrom(ctx)
	if !ok || observed <= budget {
		return nil
	}
	return &ErrDeadlineExceeded{Budget: budget, Observed: observed}
}

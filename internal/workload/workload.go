// Package workload defines the paper's evaluation workload: the four query
// fragment types QT1–QT4 of §5.2 (each with parameterized instances), the
// eight server-load phases of Table 1, the fixed server assignments the
// baselines use, and the update-load driver that puts remote servers under
// heavy background load.
package workload

import (
	"fmt"

	"repro/internal/remote"
	"repro/internal/scenario"
)

// QueryType is one of the paper's four query fragment types.
type QueryType struct {
	// Name is QT1..QT4.
	Name string
	// Description summarizes the paper's characterization.
	Description string
	// Make renders the SQL for instance i (0-based). Instances differ only
	// in the selection parameter, as in §5: "each with 10 different query
	// instances".
	Make func(i int) string
}

// Types returns the four query types:
//
//	QT1: equijoin on two large tables followed by a "greater than" selection
//	     on the input parameter and an aggregation (weakly selective).
//	QT2: like QT1 but the selection table is small — the join probes the
//	     large table per small-table row, the cache-reliant shape.
//	QT3: like QT1 but with a much more selective predicate.
//	QT4: a three-table join with a highly selective predicate.
func Types() []QueryType {
	return []QueryType{
		{
			Name:        "QT1",
			Description: "large ⋈ large, weak selection, aggregation",
			Make: func(i int) string {
				// Selectivity sweeps ~0.9 down to ~0.5 over instances.
				p := 1000 + 400*i
				return fmt.Sprintf(
					"SELECT SUM(l.l_price), COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > %d", p)
			},
		},
		{
			Name:        "QT2",
			Description: "small ⋈ large, selection on the small table, aggregation",
			Make: func(i int) string {
				// c_discount is uniform in [0, 0.2): selectivity 1 − i/10.
				p := float64(i) * 0.02
				return fmt.Sprintf(
					"SELECT SUM(o.o_amount), COUNT(*) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > %.3f", p)
			},
		},
		{
			Name:        "QT3",
			Description: "large ⋈ large, highly selective predicate, aggregation",
			Make: func(i int) string {
				// o_amount uniform in [0,10000): selectivity 2% down to
				// 0.5%. Phrased as BETWEEN so QT3's canonical form differs
				// from QT1's and the two learn separate calibration factors.
				p := 9800 + 15*i
				return fmt.Sprintf(
					"SELECT SUM(l.l_price), COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount BETWEEN %d AND 10000", p)
			},
		},
		{
			Name:        "QT4",
			Description: "three-table join, highly selective predicate",
			Make: func(i int) string {
				return fmt.Sprintf(
					"SELECT COUNT(*), SUM(l.l_price) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id JOIN lineitem AS l ON l.l_orderkey = o.o_id WHERE c.c_id = %d", i)
			},
		},
	}
}

// TypeByName returns the named query type.
func TypeByName(name string) (QueryType, error) {
	for _, qt := range Types() {
		if qt.Name == name {
			return qt, nil
		}
	}
	return QueryType{}, fmt.Errorf("workload: unknown query type %q", name)
}

// Instances renders n instances of a query type.
func Instances(qt QueryType, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = qt.Make(i)
	}
	return out
}

// UniformMix builds the uniform workload of §5.3: n instances of each type,
// interleaved round-robin so the types are uniformly distributed. (The Mix
// type composes arrival processes into tenant traffic instead.)
func UniformMix(n int) []Item {
	types := Types()
	var out []Item
	for i := 0; i < n; i++ {
		for _, qt := range types {
			out = append(out, Item{Type: qt.Name, SQL: qt.Make(i)})
		}
	}
	return out
}

// Item is one workload query with its type tag.
type Item struct {
	Type string
	SQL  string
	// Class, when non-empty, pins the query's admission workload class (e.g.
	// "batch" for report traffic) instead of cost classification; the pool
	// runner tags each execution context with it.
	Class string
	// Tenant, when non-empty, names the tenant submitting the query; the pool
	// runner tags each execution context with it (admission.WithTenant).
	Tenant string
}

// HeavyLoad is the load level "Load" phases put on a server; Base phases
// use zero.
const HeavyLoad = 1.0

// Phase is one row of Table 1: which servers carry the heavy update load.
type Phase struct {
	// Name is Phase1..Phase8.
	Name string
	// Loaded flags the servers under heavy update load.
	Loaded map[string]bool
}

// LoadLevel returns the load level for a server in this phase.
func (p Phase) LoadLevel(serverID string) float64 {
	if p.Loaded[serverID] {
		return HeavyLoad
	}
	return 0
}

// Label renders e.g. "Base/Load/Base" in S1,S2,S3 order.
func (p Phase) Label() string {
	out := ""
	for i, s := range []string{"S1", "S2", "S3"} {
		if i > 0 {
			out += "/"
		}
		if p.Loaded[s] {
			out += "Load"
		} else {
			out += "Base"
		}
	}
	return out
}

// Phases returns the eight phases of Table 1 exactly as printed:
//
//	Phase:   1    2    3    4    5    6    7    8
//	S1:      B    B    B    B    L    L    L    L
//	S2:      B    B    L    L    B    B    L    L
//	S3:      B    L    B    L    B    L    B    L
func Phases() []Phase {
	var out []Phase
	for i := 0; i < 8; i++ {
		out = append(out, Phase{
			Name: fmt.Sprintf("Phase%d", i+1),
			Loaded: map[string]bool{
				"S1": i&4 != 0,
				"S2": i&2 != 0,
				"S3": i&1 != 0,
			},
		})
	}
	return out
}

// ApplyPhase sets each server's background load per the phase and applies
// an actual update burst to loaded servers (dirtying pages and drifting
// statistics, per §5.1 Step 4 "servers are hit with a heavy update load").
func ApplyPhase(sc *scenario.Scenario, p Phase, burstRows int, seed int64) error {
	for id, srv := range sc.Servers {
		lvl := p.LoadLevel(id)
		srv.SetLoadLevel(lvl)
		if lvl > 0 && burstRows > 0 {
			if err := applyBurst(srv, burstRows, seed); err != nil {
				return err
			}
		}
	}
	return nil
}

func applyBurst(srv *remote.Server, rows int, seed int64) error {
	for _, tname := range srv.Tables() {
		if err := srv.ApplyUpdateBurst(tname, rows, seed); err != nil {
			return err
		}
	}
	return nil
}

// FixedAssignment1 is the "typical federated information system" baseline
// (§5.3): routing fixed at nickname registration time — QT1→S1, QT2→S2,
// QT3→S1, QT4→S3.
func FixedAssignment1() map[string]string {
	return map[string]string{"QT1": "S1", "QT2": "S2", "QT3": "S1", "QT4": "S3"}
}

// FixedAssignment2 is the "pick the most powerful machine" baseline
// (Figure 11): every query type routes to S3.
func FixedAssignment2() map[string]string {
	return map[string]string{"QT1": "S3", "QT2": "S3", "QT3": "S3", "QT4": "S3"}
}

package workload

import (
	"context"
	"errors"
	"sync"

	"repro/internal/admission"
	"repro/internal/simclock"
)

// Exec runs one workload item; it is the pool's pluggable query driver.
// idx is the item's submission position so executors can record results
// without extra bookkeeping.
type Exec func(ctx context.Context, idx int, item Item) (simclock.Time, error)

// PoolResult is the outcome of one pooled item, reported in submission order.
type PoolResult struct {
	Index        int
	Item         Item
	ResponseTime simclock.Time
	Err          error
	// Skipped marks items never dispatched because the context was cancelled
	// before a worker picked them up.
	Skipped bool
}

// PoolClassStats is one admission-class slice of a pool run, keyed by the
// item's Class tag ("" for untagged items).
type PoolClassStats struct {
	Completed int
	Failed    int
	// Shed counts failures that were typed admission sheds or rejections
	// (errors.Is ErrAdmissionRejected) — a subset of Failed.
	Shed          int
	TotalResponse simclock.Time
}

// PoolStats aggregates one pool run.
type PoolStats struct {
	Completed int
	Failed    int
	// Shed counts the subset of Failed that were typed admission refusals,
	// so shed-rate reports need no log scraping.
	Shed          int
	Skipped       int
	TotalResponse simclock.Time
	MaxResponse   simclock.Time
	// ByClass breaks completions, failures and sheds out per item class.
	ByClass map[string]PoolClassStats
}

// RunPool drives items through exec with at most `workers` concurrent
// executions. Results come back indexed by submission position regardless of
// completion order, so concurrent runs are comparable row-for-row against a
// sequential baseline. Cancelling ctx stops dispatching new items; items
// already running finish (or observe the cancellation themselves through
// their own context plumbing).
func RunPool(ctx context.Context, workers int, items []Item, exec Exec) ([]PoolResult, PoolStats) {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]PoolResult, len(items))
	for i := range results {
		results[i] = PoolResult{Index: i, Item: items[i], Skipped: true}
	}

	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range feed {
				ictx := ctx
				if items[idx].Class != "" {
					ictx = admission.WithClass(ictx, items[idx].Class)
				}
				if items[idx].Tenant != "" {
					ictx = admission.WithTenant(ictx, items[idx].Tenant)
				}
				// Each worker owns a disjoint set of result slots, so no lock
				// is needed around the write.
				rt, err := exec(ictx, idx, items[idx])
				results[idx] = PoolResult{Index: idx, Item: items[idx], ResponseTime: rt, Err: err}
			}
		}()
	}

dispatch:
	for i := range items {
		// Checked first so an already-cancelled context dispatches nothing;
		// the select alone could still randomly pick a ready worker.
		if ctx.Err() != nil {
			break
		}
		select {
		case feed <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	return results, tallyPool(results)
}

// tallyPool aggregates pool results, classifying typed admission refusals as
// sheds both overall and per item class.
func tallyPool(results []PoolResult) PoolStats {
	stats := PoolStats{ByClass: map[string]PoolClassStats{}}
	for _, r := range results {
		cs := stats.ByClass[r.Item.Class]
		switch {
		case r.Skipped:
			stats.Skipped++
		case r.Err != nil:
			stats.Failed++
			cs.Failed++
			if errors.Is(r.Err, admission.ErrAdmissionRejected) {
				stats.Shed++
				cs.Shed++
			}
		default:
			stats.Completed++
			cs.Completed++
			stats.TotalResponse += r.ResponseTime
			cs.TotalResponse += r.ResponseTime
			if r.ResponseTime > stats.MaxResponse {
				stats.MaxResponse = r.ResponseTime
			}
		}
		stats.ByClass[r.Item.Class] = cs
	}
	return stats
}

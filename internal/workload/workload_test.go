package workload

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sqlparser"
)

func TestTypesShape(t *testing.T) {
	types := Types()
	if len(types) != 4 {
		t.Fatalf("types: %d", len(types))
	}
	for _, qt := range types {
		for i := 0; i < 10; i++ {
			sql := qt.Make(i)
			if _, err := sqlparser.Parse(sql); err != nil {
				t.Fatalf("%s instance %d unparseable: %v\n%s", qt.Name, i, err, sql)
			}
		}
		// Instances share a canonical form (QCC generalizes across them).
		a := sqlparser.CanonicalizeSQL(qt.Make(0))
		b := sqlparser.CanonicalizeSQL(qt.Make(7))
		if a != b {
			t.Fatalf("%s instances must share canonical form", qt.Name)
		}
	}
	// QT4 joins three tables.
	stmt := sqlparser.MustParse(types[3].Make(0))
	if len(stmt.Tables()) != 3 {
		t.Fatalf("QT4 tables: %d", len(stmt.Tables()))
	}
	// QT1 and QT3 share their join shape but not their parameters' range.
	if types[0].Make(0) == types[2].Make(0) {
		t.Fatal("QT1 and QT3 must differ")
	}
}

func TestTypeByName(t *testing.T) {
	qt, err := TypeByName("QT2")
	if err != nil || qt.Name != "QT2" {
		t.Fatalf("lookup: %v %v", qt, err)
	}
	if _, err := TypeByName("QT9"); err == nil {
		t.Fatal("unknown type")
	}
}

func TestInstancesAndMix(t *testing.T) {
	qt, _ := TypeByName("QT1")
	inst := Instances(qt, 10)
	if len(inst) != 10 || inst[0] == inst[9] {
		t.Fatalf("instances: %d", len(inst))
	}
	mix := UniformMix(10)
	if len(mix) != 40 {
		t.Fatalf("mix size: %d", len(mix))
	}
	// Uniform distribution across types.
	counts := map[string]int{}
	for _, it := range mix {
		counts[it.Type]++
	}
	for qt, n := range counts {
		if n != 10 {
			t.Fatalf("type %s count %d", qt, n)
		}
	}
	// Interleaved: the first four items cover all four types.
	seen := map[string]bool{}
	for _, it := range mix[:4] {
		seen[it.Type] = true
	}
	if len(seen) != 4 {
		t.Fatalf("mix not interleaved: %v", mix[:4])
	}
}

func TestPhasesMatchTable1(t *testing.T) {
	phases := Phases()
	if len(phases) != 8 {
		t.Fatalf("phases: %d", len(phases))
	}
	// Table 1 rows, B=false L=true, phases 1..8.
	wantS1 := []bool{false, false, false, false, true, true, true, true}
	wantS2 := []bool{false, false, true, true, false, false, true, true}
	wantS3 := []bool{false, true, false, true, false, true, false, true}
	for i, p := range phases {
		if p.Loaded["S1"] != wantS1[i] || p.Loaded["S2"] != wantS2[i] || p.Loaded["S3"] != wantS3[i] {
			t.Fatalf("phase %d loads wrong: %+v", i+1, p.Loaded)
		}
	}
	if phases[0].Label() != "Base/Base/Base" {
		t.Fatalf("label: %s", phases[0].Label())
	}
	if phases[7].Label() != "Load/Load/Load" {
		t.Fatalf("label: %s", phases[7].Label())
	}
	if phases[1].LoadLevel("S3") != HeavyLoad || phases[1].LoadLevel("S1") != 0 {
		t.Fatal("load levels")
	}
	if !strings.HasPrefix(phases[2].Name, "Phase") {
		t.Fatal("names")
	}
}

func TestApplyPhase(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	p := Phases()[5] // S1+S3 loaded
	v0 := sc.Servers["S1"].Table("orders").Version()
	if err := ApplyPhase(sc, p, 5, 7); err != nil {
		t.Fatal(err)
	}
	if sc.Servers["S1"].LoadLevel() != HeavyLoad || sc.Servers["S3"].LoadLevel() != HeavyLoad {
		t.Fatal("loaded servers")
	}
	if sc.Servers["S2"].LoadLevel() != 0 {
		t.Fatal("base server")
	}
	if sc.Servers["S1"].Table("orders").Version() == v0 {
		t.Fatal("update burst must mutate loaded servers")
	}
	// Re-applying a base phase clears load.
	if err := ApplyPhase(sc, Phases()[0], 0, 7); err != nil {
		t.Fatal(err)
	}
	if sc.Servers["S1"].LoadLevel() != 0 {
		t.Fatal("load must clear")
	}
}

func TestFixedAssignments(t *testing.T) {
	f1 := FixedAssignment1()
	if f1["QT1"] != "S1" || f1["QT2"] != "S2" || f1["QT3"] != "S1" || f1["QT4"] != "S3" {
		t.Fatalf("fixed1: %v", f1)
	}
	f2 := FixedAssignment2()
	for qt, s := range f2 {
		if s != "S3" {
			t.Fatalf("fixed2[%s]=%s", qt, s)
		}
	}
}

func TestWorkloadQueriesExecute(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range Types() {
		sql := qt.Make(3)
		res, err := sc.II.Query(sql)
		if err != nil {
			t.Fatalf("%s failed: %v\n%s", qt.Name, err, sql)
		}
		if res.Rel.Cardinality() != 1 {
			t.Fatalf("%s rows: %d", qt.Name, res.Rel.Cardinality())
		}
	}
}

package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/simclock"
)

func poolItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Type: "T", SQL: "Q"}
	}
	return items
}

func TestRunPoolPreservesSubmissionOrder(t *testing.T) {
	items := poolItems(20)
	results, stats := RunPool(context.Background(), 4, items, func(_ context.Context, idx int, _ Item) (simclock.Time, error) {
		return simclock.Time(idx), nil
	})
	if len(results) != len(items) {
		t.Fatalf("results %d, want %d", len(results), len(items))
	}
	for i, r := range results {
		if r.Index != i || r.ResponseTime != simclock.Time(i) || r.Err != nil || r.Skipped {
			t.Fatalf("result %d out of order or wrong: %+v", i, r)
		}
	}
	if stats.Completed != 20 || stats.Failed != 0 || stats.Skipped != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.MaxResponse != 19 || stats.TotalResponse != 190 {
		t.Fatalf("response stats: %+v", stats)
	}
}

func TestRunPoolBoundsConcurrency(t *testing.T) {
	var cur, peak int64
	_, stats := RunPool(context.Background(), 3, poolItems(30), func(context.Context, int, Item) (simclock.Time, error) {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		defer atomic.AddInt64(&cur, -1)
		return 1, nil
	})
	if stats.Completed != 30 {
		t.Fatalf("completed %d", stats.Completed)
	}
	if got := atomic.LoadInt64(&peak); got > 3 {
		t.Fatalf("observed %d concurrent executions, bound is 3", got)
	}
}

func TestRunPoolRecordsErrors(t *testing.T) {
	boom := errors.New("boom")
	results, stats := RunPool(context.Background(), 2, poolItems(6), func(_ context.Context, idx int, _ Item) (simclock.Time, error) {
		if idx%2 == 1 {
			return 0, boom
		}
		return 1, nil
	})
	if stats.Completed != 3 || stats.Failed != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	for i, r := range results {
		if (i%2 == 1) != (r.Err != nil) {
			t.Fatalf("result %d error mismatch: %+v", i, r)
		}
	}
}

func TestRunPoolSkipsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats := RunPool(ctx, 2, poolItems(8), func(context.Context, int, Item) (simclock.Time, error) {
		return 1, nil
	})
	if stats.Skipped != len(results) {
		t.Fatalf("pre-cancelled pool must skip everything: %+v", stats)
	}
	for _, r := range results {
		if !r.Skipped {
			t.Fatalf("item %d was dispatched after cancel", r.Index)
		}
	}
}

func TestRunPoolZeroWorkersDegradesToOne(t *testing.T) {
	_, stats := RunPool(context.Background(), 0, poolItems(3), func(context.Context, int, Item) (simclock.Time, error) {
		return 1, nil
	})
	if stats.Completed != 3 {
		t.Fatalf("stats: %+v", stats)
	}
}

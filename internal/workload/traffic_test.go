package workload

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/admission"
	"repro/internal/simclock"
)

func TestArrivalProcessesStayInHorizonAndOrdered(t *testing.T) {
	procs := map[string]ArrivalProcess{
		"poisson": Poisson{RatePerSec: 100},
		"onoff":   OnOff{BurstRatePerSec: 200, BaseRatePerSec: 10, MeanOnMS: 500, MeanOffMS: 500},
		"pareto":  Pareto{Alpha: 1.5, MinGapMS: 5},
		"diurnal": Diurnal{PeakRatePerSec: 100, TroughRatePerSec: 10, PeriodMS: 10000},
	}
	const horizon = simclock.Time(20000)
	for name, p := range procs {
		times := p.Times(rand.New(rand.NewSource(1)), horizon)
		if len(times) == 0 {
			t.Fatalf("%s produced no arrivals over %v", name, horizon)
		}
		for i, at := range times {
			if at < 0 || at >= horizon {
				t.Fatalf("%s arrival %d at %v outside [0,%v)", name, i, at, horizon)
			}
			if i > 0 && at < times[i-1] {
				t.Fatalf("%s arrivals out of order at %d: %v < %v", name, i, at, times[i-1])
			}
		}
	}
	// The Poisson rate should be roughly honoured: 100/s over 20s ≈ 2000.
	n := len(Poisson{RatePerSec: 100}.Times(rand.New(rand.NewSource(7)), horizon))
	if n < 1600 || n > 2400 {
		t.Fatalf("poisson 100/s over 20s produced %d arrivals, want ~2000", n)
	}
	// The diurnal trough must be quieter than the peak: compare the first
	// quarter-period (trough-centred) against the second (peak-centred).
	d := Diurnal{PeakRatePerSec: 100, TroughRatePerSec: 5, PeriodMS: 20000}
	times := d.Times(rand.New(rand.NewSource(11)), horizon)
	early, mid := 0, 0
	for _, at := range times {
		switch {
		case at < 5000:
			early++
		case at < 15000:
			mid++
		}
	}
	if early >= mid {
		t.Fatalf("diurnal trough (%d arrivals) not quieter than peak (%d)", early, mid)
	}
}

// TestMixScheduleDeterminism pins the replayability contract: the same seed
// expands to the identical arrival sequence, a different seed does not, and
// editing one stream leaves the others' arrivals untouched.
func TestMixScheduleDeterminism(t *testing.T) {
	mix := Mix{
		Seed:    42,
		Horizon: 10000,
		Streams: []TenantStream{
			{Tenant: "gold", Class: "interactive", Queries: []string{"q1", "q2"}, Arrivals: Poisson{RatePerSec: 50}},
			{Tenant: "bronze", Class: "batch", Queries: []string{"r1"}, Arrivals: OnOff{BurstRatePerSec: 100, MeanOnMS: 1000, MeanOffMS: 1000}},
			{Tenant: "edge", Queries: []string{"s1"}, Arrivals: Pareto{Alpha: 1.3, MinGapMS: 10}},
		},
	}
	a, b := mix.Schedule(), mix.Schedule()
	if len(a) == 0 {
		t.Fatal("mix expanded to no arrivals")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule out of order at %d", i)
		}
	}

	other := mix
	other.Seed = 43
	c := other.Schedule()
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds replayed the identical schedule")
	}

	// Stream independence: changing bronze's process must not move gold's
	// arrivals (each stream draws from its own seeded rng).
	variant := mix
	variant.Streams = append([]TenantStream(nil), mix.Streams...)
	variant.Streams[1].Arrivals = Poisson{RatePerSec: 5}
	goldOf := func(arr []Arrival) []Arrival {
		var out []Arrival
		for _, x := range arr {
			if x.Item.Tenant == "gold" {
				out = append(out, x)
			}
		}
		return out
	}
	ga, gv := goldOf(a), goldOf(variant.Schedule())
	if len(ga) != len(gv) {
		t.Fatalf("editing bronze changed gold's arrival count: %d vs %d", len(ga), len(gv))
	}
	for i := range ga {
		if ga[i].At != gv[i].At || ga[i].Item != gv[i].Item {
			t.Fatalf("editing bronze moved gold arrival %d", i)
		}
	}
}

// admitExec builds a mix executor that funnels every query through the given
// admission controller and occupies its slot for costMS of *virtual* time:
// service completion is a scheduled clock event, so a slot granted at t stays
// busy until the driver advances the clock to t+costMS. Together with
// RunMix's settle barrier this makes the replay a true discrete-event
// simulation of the queueing system.
func admitExec(ctrl *admission.Controller, clk *simclock.Clock, costMS float64) Exec {
	return func(ctx context.Context, idx int, item Item) (simclock.Time, error) {
		g, err := ctrl.Admit(ctx, admission.Request{
			Query:  item.SQL,
			CostMS: costMS,
			Class:  admission.ClassFromContext(ctx),
			Tenant: admission.TenantFromContext(ctx),
		})
		if err != nil {
			return 0, err
		}
		defer g.Release()
		done := make(chan struct{})
		clk.ScheduleAfter(simclock.Time(costMS), func(simclock.Time) { close(done) })
		select {
		case <-done:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		return g.QueueWait() + simclock.Time(costMS), nil
	}
}

// TestMixSoakWeightedFairness is the satellite soak: four tenants with 4:2:1:1
// weights, bursty on/off arrivals, a saturated 4-slot machine, run under the
// race detector. It checks that no query is lost, the run drains (stall
// advance can never deadlock it), and the cumulative served-cost split lands
// within ±20% of the weights while every tenant stays backlogged.
func TestMixSoakWeightedFairness(t *testing.T) {
	clk := simclock.New()
	ctrl := admission.New(admission.Config{Clock: clk, Policy: admission.Policy{MaxConcurrent: 4}})
	weights := map[string]float64{"w4": 4, "w2": 2, "b1": 1, "b2": 1}
	for name, w := range weights {
		ctrl.RegisterTenant(admission.Tenant{Name: name, Weight: w})
	}
	const costMS = 50
	const perTenant = 250
	mix := Mix{Seed: 7, Horizon: 30000}
	for _, name := range []string{"w4", "w2", "b1", "b2"} {
		mix.Streams = append(mix.Streams, TenantStream{
			Tenant:  name,
			Queries: []string{"SELECT 1", "SELECT 2", "SELECT 3"},
			// Heavily oversubscribed even at the base rate, so every tenant
			// stays backlogged while bursts modulate queue growth on top.
			Arrivals:   OnOff{BurstRatePerSec: 120, BaseRatePerSec: 40, MeanOnMS: 2000, MeanOffMS: 2000},
			MaxQueries: perTenant,
		})
	}

	// Snapshot per-tenant accounting every 500 virtual ms; fairness is judged
	// at the last instant all four tenants were still backlogged.
	type snap struct {
		queuedMin int
		served    map[string]float64
	}
	var snaps []snap
	cancel := clk.Every(500, func(now simclock.Time) simclock.Time {
		s := snap{queuedMin: 1 << 30, served: map[string]float64{}}
		for _, ts := range ctrl.TenantStats() {
			if _, ok := weights[ts.Name]; !ok {
				continue
			}
			if ts.Queued < s.queuedMin {
				s.queuedMin = ts.Queued
			}
			s.served[ts.Name] = ts.ServedCostMS
		}
		snaps = append(snaps, s)
		return 0
	})
	defer cancel()

	settle := func() int { return ctrl.QueueDepth() + ctrl.Running() }
	res := RunMix(context.Background(), clk, mix, admitExec(ctrl, clk, costMS), settle)
	if len(res.Arrivals) != 4*perTenant {
		t.Fatalf("schedule expanded %d arrivals, want %d", len(res.Arrivals), 4*perTenant)
	}
	if res.Stats.Completed != len(res.Arrivals) || res.Stats.Failed != 0 || res.Stats.Skipped != 0 {
		t.Fatalf("lost queries: %+v over %d arrivals", res.Stats, len(res.Arrivals))
	}
	if ctrl.Running() != 0 || ctrl.QueueDepth() != 0 {
		t.Fatalf("controller did not drain: running=%d queued=%d", ctrl.Running(), ctrl.QueueDepth())
	}

	best := -1
	for i, s := range snaps {
		if s.queuedMin > 0 && len(s.served) == len(weights) {
			best = i
		}
	}
	if best < 0 {
		t.Fatal("no snapshot found with all four tenants backlogged")
	}
	served := snaps[best].served
	// Normalize by weight: under weighted-fair scheduling every tenant's
	// served-cost/weight should agree while all are backlogged.
	lo, hi := 0.0, 0.0
	for name, w := range weights {
		share := served[name] / w
		if lo == 0 || share < lo {
			lo = share
		}
		if share > hi {
			hi = share
		}
	}
	if lo <= 0 || hi/lo > 1.5 {
		t.Fatalf("fair shares diverged beyond +/-20%%: served=%v (spread %.2fx)", served, hi/lo)
	}
}

// traffic.go is the production traffic simulator: arrival-process generators
// on virtual time (open-loop Poisson, bursty on/off MMPP, heavy-tailed Pareto
// think times, diurnal rate curves) composed into replayable seeded tenant
// mixes that drive the same executors the pool runner uses.
package workload

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/simclock"
)

// ArrivalProcess generates the arrival instants of one traffic stream: an
// increasing sequence of virtual-millisecond times in [0, horizon). Every
// draw comes from the supplied rng, so a stream replays identically for the
// same seed.
type ArrivalProcess interface {
	Times(r *rand.Rand, horizon simclock.Time) []simclock.Time
}

// Poisson is an open-loop Poisson arrival process: independent exponential
// gaps with mean 1000/RatePerSec virtual milliseconds.
type Poisson struct {
	// RatePerSec is the arrival rate in queries per virtual second.
	RatePerSec float64
}

// Times implements ArrivalProcess.
func (p Poisson) Times(r *rand.Rand, horizon simclock.Time) []simclock.Time {
	if p.RatePerSec <= 0 {
		return nil
	}
	mean := 1000 / p.RatePerSec
	var out []simclock.Time
	t := 0.0
	for {
		t += r.ExpFloat64() * mean
		if t >= float64(horizon) {
			return out
		}
		out = append(out, simclock.Time(t))
	}
}

// OnOff is a two-state Markov-modulated Poisson process (MMPP): the stream
// alternates between an ON state emitting at BurstRatePerSec and an OFF state
// emitting at BaseRatePerSec, with exponentially distributed holding times.
// It models bursty tenants — batch jobs, retry storms, fan-out spikes.
type OnOff struct {
	// BurstRatePerSec is the arrival rate while ON.
	BurstRatePerSec float64
	// BaseRatePerSec is the arrival rate while OFF (zero silences the stream
	// between bursts).
	BaseRatePerSec float64
	// MeanOnMS and MeanOffMS are the mean holding times of the two states in
	// virtual milliseconds.
	MeanOnMS  float64
	MeanOffMS float64
}

// Times implements ArrivalProcess. The stream starts OFF, so the first burst
// arrives after one exponential OFF period.
func (p OnOff) Times(r *rand.Rand, horizon simclock.Time) []simclock.Time {
	var out []simclock.Time
	now, on := 0.0, false
	for now < float64(horizon) {
		hold, rate := p.MeanOffMS, p.BaseRatePerSec
		if on {
			hold, rate = p.MeanOnMS, p.BurstRatePerSec
		}
		end := now + r.ExpFloat64()*hold
		if rate > 0 {
			mean := 1000 / rate
			for t := now + r.ExpFloat64()*mean; t < end && t < float64(horizon); t += r.ExpFloat64() * mean {
				out = append(out, simclock.Time(t))
			}
		}
		now = end
		on = !on
	}
	return out
}

// Pareto is a heavy-tailed renewal process: gaps are Pareto(Alpha) with
// scale MinGapMS, so most arrivals cluster tightly while occasional think
// times stretch far into the tail — the classic shape of human sessions.
type Pareto struct {
	// Alpha is the tail index; values in (1, 2] give a finite mean with an
	// infinite variance. Zero or negative defaults to 1.5.
	Alpha float64
	// MinGapMS is the scale parameter: the minimum gap between arrivals.
	MinGapMS float64
}

// Times implements ArrivalProcess.
func (p Pareto) Times(r *rand.Rand, horizon simclock.Time) []simclock.Time {
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	min := p.MinGapMS
	if min <= 0 {
		min = 1
	}
	var out []simclock.Time
	t := 0.0
	for {
		// Inverse-CDF: gap = x_m · U^(-1/α).
		t += min * math.Pow(r.Float64(), -1/alpha)
		if t >= float64(horizon) {
			return out
		}
		out = append(out, simclock.Time(t))
	}
}

// Diurnal is a non-homogeneous Poisson process whose rate follows a cosine
// day curve: TroughRatePerSec at time zero rising to PeakRatePerSec half a
// period later and back. Arrivals are drawn by Lewis-Shedler thinning against
// the peak rate.
type Diurnal struct {
	PeakRatePerSec   float64
	TroughRatePerSec float64
	// PeriodMS is the length of one simulated "day" in virtual milliseconds.
	PeriodMS float64
}

func (d Diurnal) rateAt(t float64) float64 {
	if d.PeriodMS <= 0 {
		return d.PeakRatePerSec
	}
	u := (1 - math.Cos(2*math.Pi*t/d.PeriodMS)) / 2
	return d.TroughRatePerSec + (d.PeakRatePerSec-d.TroughRatePerSec)*u
}

// Times implements ArrivalProcess.
func (d Diurnal) Times(r *rand.Rand, horizon simclock.Time) []simclock.Time {
	peak := d.PeakRatePerSec
	if d.TroughRatePerSec > peak {
		peak = d.TroughRatePerSec
	}
	if peak <= 0 {
		return nil
	}
	mean := 1000 / peak
	var out []simclock.Time
	t := 0.0
	for {
		t += r.ExpFloat64() * mean
		if t >= float64(horizon) {
			return out
		}
		if r.Float64()*peak <= d.rateAt(t) {
			out = append(out, simclock.Time(t))
		}
	}
}

// TenantStream is one tenant's traffic in a Mix: an arrival process paired
// with the queries it cycles through and the admission tags they carry.
type TenantStream struct {
	// Tenant and Class tag every query's context (admission.WithTenant /
	// WithClass).
	Tenant string
	Class  string
	// Label names the stream in results (Item.Type); defaults to Tenant.
	Label string
	// Queries is cycled round-robin across the stream's arrivals.
	Queries []string
	// Arrivals generates the stream's arrival instants.
	Arrivals ArrivalProcess
	// MaxQueries truncates the stream (0 = bounded only by the horizon).
	MaxQueries int
}

// Arrival is one scheduled query of a Mix.
type Arrival struct {
	// At is the virtual arrival instant.
	At simclock.Time
	// Stream is the index of the TenantStream that emitted the query.
	Stream int
	Item   Item
}

// Mix is a replayable multi-tenant traffic scenario: seeded tenant streams
// over a common virtual-time horizon. The same Seed always expands to the
// identical arrival sequence.
type Mix struct {
	// Seed derives every stream's private rng; streams are independent, so
	// editing one stream never perturbs another's arrivals.
	Seed int64
	// Horizon bounds arrival instants in virtual milliseconds.
	Horizon simclock.Time
	Streams []TenantStream
}

// streamSeed derives stream i's rng seed from the mix seed (splitmix64
// finalizer, so neighbouring streams get uncorrelated sequences).
func streamSeed(seed int64, i int) int64 {
	x := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Schedule expands the mix into its merged, time-ordered arrival sequence.
// Ties preserve stream declaration order, then emission order, so the
// expansion is fully deterministic.
func (m Mix) Schedule() []Arrival {
	var out []Arrival
	for i, s := range m.Streams {
		if s.Arrivals == nil || len(s.Queries) == 0 {
			continue
		}
		r := rand.New(rand.NewSource(streamSeed(m.Seed, i)))
		times := s.Arrivals.Times(r, m.Horizon)
		if s.MaxQueries > 0 && len(times) > s.MaxQueries {
			times = times[:s.MaxQueries]
		}
		label := s.Label
		if label == "" {
			label = s.Tenant
		}
		for k, at := range times {
			out = append(out, Arrival{
				At:     at,
				Stream: i,
				Item: Item{
					Type:   label,
					SQL:    s.Queries[k%len(s.Queries)],
					Class:  s.Class,
					Tenant: s.Tenant,
				},
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MixResult is one Mix replay: the expanded schedule, per-arrival outcomes
// (indexed like the schedule), and the aggregate pool statistics.
type MixResult struct {
	Arrivals []Arrival
	Results  []PoolResult
	Stats    PoolStats
}

// RunMix replays the mix against exec as an open-loop generator: virtual time
// advances to each arrival instant and the query is dispatched on its own
// goroutine — arrivals never wait for earlier responses, which is exactly
// what lets overload build real queues. The call returns when every arrival
// has resolved (completed, typed shed, or error), so no query is ever lost.
//
// settle, when non-nil, reports how many in-flight queries the backend can
// currently see (for an admission-gated executor: queue depth + running
// count). RunMix uses it as a barrier between arrivals: the next arrival is
// only released once every earlier one is visible to the backend or already
// resolved, and after the last arrival the driver keeps stepping virtual
// time to the next pending clock event until every query resolves. That
// makes the replay a faithful discrete-event simulation for executors whose
// service occupies virtual time (blocking on scheduled completion events) —
// backlog builds exactly as the arrival process dictates instead of
// depending on goroutine scheduling. With settle nil, dispatch simply
// outpaces execution in wall time, and queues form only where execution
// genuinely blocks — the right mode for executors that charge the clock
// themselves, where saturation comes from wall-time pile-up.
func RunMix(ctx context.Context, clk *simclock.Clock, m Mix, exec Exec, settle func() int) MixResult {
	arrivals := m.Schedule()
	results := make([]PoolResult, len(arrivals))
	var wg sync.WaitGroup
	var finished atomic.Int64
	spawned := 0
	// settleWait blocks (wall time only — virtual time stands still) until
	// every dispatched query has either resolved or reached the backend.
	settleWait := func() {
		for ctx.Err() == nil && settle() < spawned-int(finished.Load()) {
			runtime.Gosched()
		}
	}
	// quiesce yields until the simulation stops moving at the current
	// virtual instant: every dispatched query is backend-visible or
	// resolved, and two consecutive yield rounds see no new completions and
	// no new scheduled events. Completion events only close a channel — the
	// released slot, the next grant, and the granted query's own completion
	// event all need worker-goroutine CPU — so the driver must not advance
	// the clock again until that cascade lands, or grants would be stamped
	// at a later virtual time than the release that enabled them.
	quiesce := func() {
		stable := 0
		for ctx.Err() == nil && stable < 2 {
			settleWait()
			f, p := finished.Load(), clk.Pending()
			runtime.Gosched()
			if finished.Load() == f && clk.Pending() == p {
				stable++
			} else {
				stable = 0
			}
		}
	}
	for i, a := range arrivals {
		if ctx.Err() != nil {
			results[i] = PoolResult{Index: i, Item: a.Item, Skipped: true}
			continue
		}
		if settle != nil {
			// Step event-to-event up to the arrival instant, quiescing after
			// each event so releases and grants happen at the virtual time
			// their triggering event fired — one big AdvanceTo would stamp
			// them all at the arrival time instead.
			for ctx.Err() == nil {
				at, ok := clk.NextEvent()
				if !ok || at > a.At {
					break
				}
				clk.AdvanceTo(at)
				quiesce()
			}
		}
		clk.AdvanceTo(a.At)
		ictx := ctx
		if a.Item.Class != "" {
			ictx = admission.WithClass(ictx, a.Item.Class)
		}
		if a.Item.Tenant != "" {
			ictx = admission.WithTenant(ictx, a.Item.Tenant)
		}
		wg.Add(1)
		spawned++
		go func(i int, item Item, ictx context.Context) {
			rt, err := exec(ictx, i, item)
			results[i] = PoolResult{Index: i, Item: item, ResponseTime: rt, Err: err}
			finished.Add(1)
			wg.Done()
		}(i, a.Item, ictx)
		if settle != nil {
			quiesce()
		}
	}
	if settle != nil {
		// Arrivals are exhausted but queries may still be queued or mid
		// virtual service; step the clock event-to-event until all resolve,
		// quiescing between steps so each event's release/grant cascade
		// lands before time moves again.
		for ctx.Err() == nil && int(finished.Load()) < spawned {
			quiesce()
			if int(finished.Load()) >= spawned {
				break
			}
			if at, ok := clk.NextEvent(); ok {
				clk.AdvanceTo(at)
			} else {
				runtime.Gosched()
			}
		}
	}
	wg.Wait()
	return MixResult{Arrivals: arrivals, Results: results, Stats: tallyPool(results)}
}

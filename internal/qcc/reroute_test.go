package qcc_test

import (
	"context"
	"testing"

	"repro/internal/qcc"
	"repro/internal/scenario"
)

func buildReroute(t *testing.T, enabled bool) (*scenario.Scenario, *qcc.QCC) {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{
		Clock:          sc.Clock,
		MW:             sc.MW,
		Reroute:        qcc.RerouteConfig{Enabled: enabled},
		DisableDaemons: true,
	}, sc.II)
	return sc, q
}

func TestRerouterSwitchesWhenTargetDegradesAfterCompile(t *testing.T) {
	sc, q := buildReroute(t, true)
	// Compile the plan while everything is calm.
	gp, err := sc.II.Compile(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	compiled := gp.Fragments[0].ServerID
	// AFTER compilation, the chosen server's load spikes and QCC has
	// already learned about it (e.g. from other queries' observations).
	sc.Servers[compiled].SetLoadLevel(1)
	stmt := gp.Fragments[0].Spec.Stmt
	for i := 0; i < 3; i++ {
		cands, err := sc.MW.ExplainFragment(compiled, stmt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.MW.ExecuteFragment(context.Background(), compiled, stmt.String(), cands[0].Plan, cands[0].RawEst); err != nil {
			t.Fatal(err)
		}
	}
	q.PublishNow()
	// Executing the STALE compiled plan now switches at dispatch time.
	res, err := sc.II.Execute(gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedServers["QF1"] == compiled {
		t.Fatalf("fragment should have moved off loaded %s", compiled)
	}
	switched, checked := q.Rerouter.Switched()
	if switched == 0 || checked == 0 {
		t.Fatalf("stats: switched=%d checked=%d", switched, checked)
	}
}

func TestRerouterSwitchesOffFencedServer(t *testing.T) {
	sc, q := buildReroute(t, true)
	gp, err := sc.II.Compile(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	compiled := gp.Fragments[0].ServerID
	// The server crashes after compilation; a probe fences it.
	sc.Servers[compiled].SetDown(true)
	q.ProbeNow()
	res, err := sc.II.Execute(gp)
	if err != nil {
		t.Fatalf("rerouter should save the stale plan: %v", err)
	}
	if res.ExecutedServers["QF1"] == compiled {
		t.Fatal("fragment ran on a down server")
	}
}

func TestRerouterKeepsChoiceWhenStillBest(t *testing.T) {
	sc, q := buildReroute(t, true)
	gp, err := sc.II.Compile(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	compiled := gp.Fragments[0].ServerID
	res, err := sc.II.Execute(gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedServers["QF1"] != compiled {
		t.Fatal("calm system must keep the compiled choice")
	}
	switched, checked := q.Rerouter.Switched()
	if switched != 0 || checked == 0 {
		t.Fatalf("stats: switched=%d checked=%d", switched, checked)
	}
}

func TestRerouterDisabledIsInert(t *testing.T) {
	sc, q := buildReroute(t, false)
	if q.Rerouter != nil {
		t.Fatal("rerouter should not exist when disabled")
	}
	if _, err := sc.II.Query(scanQuery); err != nil {
		t.Fatal(err)
	}
}

func TestRerouterHysteresis(t *testing.T) {
	// A modest cost difference below the improvement threshold must NOT
	// cause a switch (flapping protection).
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{
		Clock:          sc.Clock,
		MW:             sc.MW,
		Reroute:        qcc.RerouteConfig{Enabled: true, Improvement: 0.99},
		DisableDaemons: true,
	}, sc.II)
	gp, err := sc.II.Compile(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	compiled := gp.Fragments[0].ServerID
	sc.Servers[compiled].SetLoadLevel(0.3) // mild degradation
	res, err := sc.II.Execute(gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedServers["QF1"] != compiled {
		t.Fatal("mild degradation below threshold must not switch")
	}
	_ = q
}

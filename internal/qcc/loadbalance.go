package qcc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/optimizer"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/telemetry"
)

// LBMode selects the load-distribution level (§4).
type LBMode int

const (
	// LBOff disables load distribution: the optimizer's winner always runs.
	LBOff LBMode = iota
	// LBFragment rotates exchangeable fragment plans: identical physical
	// plans on different servers with close calibrated costs (§4.1).
	LBFragment
	// LBGlobal rotates whole global plans: per-server-set pruning, then
	// round robin over plans within the closeness band (§4.2).
	LBGlobal
)

// String names the mode.
func (m LBMode) String() string {
	switch m {
	case LBFragment:
		return "fragment"
	case LBGlobal:
		return "global"
	default:
		return "off"
	}
}

// LBConfig tunes the load balancer.
type LBConfig struct {
	Mode LBMode
	// Closeness is the relative cost band for exchangeable plans (paper:
	// "within 20%"; default 0.2).
	Closeness float64
	// WorkloadThreshold is the minimum workload (calibrated cost ×
	// frequency, in ms per period) before a query is load-distributed
	// ("must be greater than a preset threshold value"). Default 0: always.
	WorkloadThreshold float64
	// Period is the workload accounting window (default 5000 ms).
	Period simclock.Time
	// RefreshInterval bounds rotation-set staleness ("the process is
	// repeated periodically as calibrated costs may change"; default 2000).
	RefreshInterval simclock.Time
	// MaxAlternatives caps the rotation set size (default 4).
	MaxAlternatives int
}

func (c *LBConfig) fill() {
	if c.Closeness == 0 {
		c.Closeness = 0.2
	}
	if c.Period <= 0 {
		c.Period = 5000
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 2000
	}
	if c.MaxAlternatives <= 0 {
		c.MaxAlternatives = 4
	}
}

// EnumerateFunc produces ranked executable global plans for a statement;
// the production implementation is the real optimizer's Enumerate.
type EnumerateFunc func(stmt *sqlparser.SelectStmt, topK int) ([]*optimizer.GlobalPlan, error)

type rotation struct {
	plans     []*optimizer.GlobalPlan
	idx       int
	derivedAt simclock.Time
}

type usage struct {
	windowStart simclock.Time
	count       int
	costSum     float64
}

// LoadBalancer implements integrator.RoutePolicy: it decides, per query,
// whether to run the optimizer's winner or the next plan in a round-robin
// rotation set.
type LoadBalancer struct {
	mu        sync.Mutex
	cfg       LBConfig
	clock     *simclock.Clock
	enumerate EnumerateFunc
	rotations map[string]*rotation
	usages    map[string]*usage
	// rotatedCount counts times an alternative (non-winner) plan was chosen.
	rotatedCount int
	tel          *telemetry.Telemetry
	// log receives per-decision records (nil-safe; shared with the
	// weighted router so \route shows one merged history).
	log *router.DecisionLog
}

// NewLoadBalancer builds the balancer.
func NewLoadBalancer(cfg LBConfig, clock *simclock.Clock, enumerate EnumerateFunc) *LoadBalancer {
	cfg.fill()
	return &LoadBalancer{
		cfg:       cfg,
		clock:     clock,
		enumerate: enumerate,
		rotations: map[string]*rotation{},
		usages:    map[string]*usage{},
	}
}

// SetTelemetry installs the observability subsystem: routing decisions feed
// the per-server-set rotation distribution. Nil disables.
func (lb *LoadBalancer) SetTelemetry(t *telemetry.Telemetry) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.tel = t
}

// SetDecisionLog installs the shared routing decision log (nil disables).
func (lb *LoadBalancer) SetDecisionLog(l *router.DecisionLog) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.log = l
}

// Rotations reports how often an alternative plan was substituted.
func (lb *LoadBalancer) Rotations() int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.rotatedCount
}

// RefreshInterval returns the resolved rotation refresh interval (defaults
// applied). The integrator's plan cache aligns its staleness bound with
// this, so a cached compilation never outlives the rotation epoch its
// routing was derived under.
func (lb *LoadBalancer) RefreshInterval() simclock.Time {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.cfg.RefreshInterval
}

// SetMode changes the balancing mode at runtime (rotation sets reset).
func (lb *LoadBalancer) SetMode(mode LBMode) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.cfg.Mode = mode
	lb.rotations = map[string]*rotation{}
}

// ChooseGlobal implements the routing decision.
func (lb *LoadBalancer) ChooseGlobal(queryText string, winner *optimizer.GlobalPlan) *optimizer.GlobalPlan {
	lb.mu.Lock()
	mode := lb.cfg.Mode
	now := lb.clock.Now()

	u := lb.usages[queryText]
	if u == nil || now-u.windowStart > lb.cfg.Period {
		u = &usage{windowStart: now}
		lb.usages[queryText] = u
	}
	u.count++
	u.costSum += winner.TotalEstMS
	workload := u.costSum
	lb.mu.Unlock()

	if mode == LBOff {
		return winner
	}
	if lb.cfg.WorkloadThreshold > 0 && workload < lb.cfg.WorkloadThreshold {
		return winner
	}

	lb.mu.Lock()
	rot := lb.rotations[queryText]
	stale := rot == nil || now-rot.derivedAt > lb.cfg.RefreshInterval
	lb.mu.Unlock()

	if stale {
		plans := lb.derive(winner, mode)
		lb.mu.Lock()
		rot = &rotation{plans: plans, derivedAt: now}
		lb.rotations[queryText] = rot
		lb.mu.Unlock()
	}

	lb.mu.Lock()
	defer lb.mu.Unlock()
	if rot == nil || len(rot.plans) <= 1 {
		lb.log.Record(router.Decision{
			At: now, Query: queryText, Policy: "lb",
			Route:  winner.RouteKey(),
			Reason: "kept winner (no rotation set)",
		})
		return winner
	}
	pos := rot.idx % len(rot.plans)
	chosen := rot.plans[pos]
	rot.idx++
	if reg := lb.tel.Active(); reg != nil {
		reg.Counter("qcc.lb_choices", chosen.ServerSetKey()).Inc()
	}
	reason := fmt.Sprintf("round-robin %d/%d (winner)", pos+1, len(rot.plans))
	if chosen.RouteKey() != winner.RouteKey() {
		lb.rotatedCount++
		lb.tel.Active().Counter("qcc.rotations", "").Inc()
		reason = fmt.Sprintf("round-robin %d/%d (rotated off winner)", pos+1, len(rot.plans))
	}
	lb.log.Record(router.Decision{
		At: now, Query: queryText, Policy: "lb",
		Route:  chosen.RouteKey(),
		Reason: reason,
	})
	return chosen
}

// derive builds the rotation set for a winner under the given mode.
func (lb *LoadBalancer) derive(winner *optimizer.GlobalPlan, mode LBMode) []*optimizer.GlobalPlan {
	all, err := lb.enumerate(winner.Stmt, 0)
	if err != nil || len(all) == 0 {
		return []*optimizer.GlobalPlan{winner}
	}
	switch mode {
	case LBGlobal:
		return lb.deriveGlobal(all)
	case LBFragment:
		return lb.deriveFragment(winner, all)
	default:
		return []*optimizer.GlobalPlan{winner}
	}
}

// deriveGlobal implements §4.2: keep the cheapest plan per server set, then
// rotate over plans within the closeness band of the overall cheapest.
func (lb *LoadBalancer) deriveGlobal(all []*optimizer.GlobalPlan) []*optimizer.GlobalPlan {
	cheapestPerSet := map[string]*optimizer.GlobalPlan{}
	for _, p := range all {
		key := p.ServerSetKey()
		if cur, ok := cheapestPerSet[key]; !ok || p.TotalEstMS < cur.TotalEstMS {
			cheapestPerSet[key] = p
		}
	}
	pruned := make([]*optimizer.GlobalPlan, 0, len(cheapestPerSet))
	for _, p := range cheapestPerSet {
		pruned = append(pruned, p)
	}
	sort.Slice(pruned, func(i, j int) bool { return pruned[i].TotalEstMS < pruned[j].TotalEstMS })
	cheapest := pruned[0].TotalEstMS
	var set []*optimizer.GlobalPlan
	for _, p := range pruned {
		if p.TotalEstMS <= cheapest*(1+lb.cfg.Closeness) {
			set = append(set, p)
		}
		if len(set) == lb.cfg.MaxAlternatives {
			break
		}
	}
	return set
}

// deriveFragment implements §4.1: only plans whose every fragment runs the
// IDENTICAL physical plan as the winner (same signature, possibly on a
// replica) are exchangeable; rotate over those within the closeness band.
func (lb *LoadBalancer) deriveFragment(winner *optimizer.GlobalPlan, all []*optimizer.GlobalPlan) []*optimizer.GlobalPlan {
	wantSigs := make([]string, len(winner.Fragments))
	for i, f := range winner.Fragments {
		wantSigs[i] = f.Plan.Signature
	}
	var set []*optimizer.GlobalPlan
	for _, p := range all {
		if len(p.Fragments) != len(wantSigs) {
			continue
		}
		identical := true
		for i, f := range p.Fragments {
			if f.Plan.Signature != wantSigs[i] {
				identical = false
				break
			}
		}
		if !identical {
			continue
		}
		if p.TotalEstMS <= winner.TotalEstMS*(1+lb.cfg.Closeness) {
			set = append(set, p)
		}
		if len(set) == lb.cfg.MaxAlternatives {
			break
		}
	}
	if len(set) == 0 {
		return []*optimizer.GlobalPlan{winner}
	}
	sort.Slice(set, func(i, j int) bool { return set[i].TotalEstMS < set[j].TotalEstMS })
	return set
}

package qcc

import (
	"sync"
)

// ReliabilityConfig tunes the reliability factor (§2: "QCC also records
// error messages ... later used to compute the reliability factor for cost
// calibration", §3.5: "QCC also incorporates reliability into the decision
// process").
type ReliabilityConfig struct {
	// Window is the number of recent outcomes tracked per server (default 50).
	Window int
	// Penalty scales the failure rate into a cost multiplier:
	// factor = 1 + Penalty · failureRate. A Penalty of 4 makes a
	// half-failing server look 3× as expensive (default 4).
	Penalty float64
}

func (c *ReliabilityConfig) fill() {
	if c.Window <= 0 {
		c.Window = 50
	}
	if c.Penalty == 0 {
		c.Penalty = 4
	}
}

// Reliability tracks per-server success/failure outcomes and derives the
// reliability factor. This is how QCC makes II "access not only high
// performance but also highly available remote servers" — a fast but flaky
// source is calibrated to look expensive even while it is up.
type Reliability struct {
	mu       sync.Mutex
	cfg      ReliabilityConfig
	outcomes map[string][]bool // ring of recent outcomes, true = success
}

// NewReliability builds the tracker.
func NewReliability(cfg ReliabilityConfig) *Reliability {
	cfg.fill()
	return &Reliability{cfg: cfg, outcomes: map[string][]bool{}}
}

// RecordSuccess notes a successful interaction with the server.
func (r *Reliability) RecordSuccess(serverID string) { r.record(serverID, true) }

// RecordFailure notes a failed interaction with the server.
func (r *Reliability) RecordFailure(serverID string) { r.record(serverID, false) }

func (r *Reliability) record(serverID string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring := append(r.outcomes[serverID], ok)
	if len(ring) > r.cfg.Window {
		ring = ring[len(ring)-r.cfg.Window:]
	}
	r.outcomes[serverID] = ring
}

// FailureRate returns the recent failure fraction for the server.
func (r *Reliability) FailureRate(serverID string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring := r.outcomes[serverID]
	if len(ring) == 0 {
		return 0
	}
	fails := 0
	for _, ok := range ring {
		if !ok {
			fails++
		}
	}
	return float64(fails) / float64(len(ring))
}

// Factor returns the reliability cost multiplier for the server (>= 1).
func (r *Reliability) Factor(serverID string) float64 {
	return 1 + r.cfg.Penalty*r.FailureRate(serverID)
}

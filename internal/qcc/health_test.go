package qcc_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/metawrapper"
	"repro/internal/qcc"
	"repro/internal/remote"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func fragKey(server string) metawrapper.FragmentKey {
	return metawrapper.FragmentKey{ServerID: server, Signature: "health-test"}
}

// buildWithTelemetry wires a daemon-free QCC with an enabled telemetry
// subsystem so tests can drive observations manually and assert the gauges.
func buildWithTelemetry(t *testing.T) (*scenario.Scenario, *qcc.QCC, *telemetry.Telemetry) {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(telemetry.Config{Enabled: true})
	q := qcc.Attach(qcc.Config{
		Clock:          sc.Clock,
		MW:             sc.MW,
		DisableDaemons: true,
		Telemetry:      tel,
	}, sc.II)
	return sc, q, tel
}

// TestReliabilityFactorDecayAndRecovery drives a server through consecutive
// probe failures and then a recovery streak, asserting the factor climbs
// with the failure rate, never exceeds 1+Penalty, and decays back toward 1
// as successes refill the window — with the telemetry gauge tracking every
// step.
func TestReliabilityFactorDecayAndRecovery(t *testing.T) {
	_, q, tel := buildWithTelemetry(t)
	const server = "S1"
	const window = 50

	gauge := func() float64 {
		v, ok := tel.Metrics().GaugeValue("qcc.reliability_factor", server)
		if !ok {
			t.Fatal("reliability gauge must exist after an observation")
		}
		return v
	}

	if f := q.Rel.Factor(server); f != 1 {
		t.Fatalf("unknown server must have factor 1, got %g", f)
	}

	// Consecutive probe failures: the factor must rise monotonically toward
	// the all-failing ceiling 1+Penalty.
	prev := 1.0
	flaky := errors.New("probe: connection reset")
	for i := 0; i < window; i++ {
		q.ObserveProbe(server, 0, flaky)
		f := q.Rel.Factor(server)
		if f < prev {
			t.Fatalf("factor must not decrease under consecutive failures: %g -> %g", prev, f)
		}
		if g := gauge(); g != f {
			t.Fatalf("telemetry gauge %g out of sync with factor %g", g, f)
		}
		prev = f
	}
	ceiling := 1 + 4.0 // default Penalty
	if math.Abs(prev-ceiling) > 1e-9 {
		t.Fatalf("all-failing window must hit 1+Penalty=%g, got %g", ceiling, prev)
	}
	// Extra failures beyond the window cannot push the factor higher.
	q.ObserveProbe(server, 0, flaky)
	if f := q.Rel.Factor(server); f > ceiling+1e-9 {
		t.Fatalf("factor exceeded ceiling: %g", f)
	}

	// Recovery: successful probes displace failures from the window and the
	// factor decays monotonically back to exactly 1.
	prev = q.Rel.Factor(server)
	for i := 0; i < window; i++ {
		q.ObserveProbe(server, 1, nil)
		f := q.Rel.Factor(server)
		if f > prev {
			t.Fatalf("factor must not increase under consecutive successes: %g -> %g", prev, f)
		}
		if g := gauge(); g != f {
			t.Fatalf("telemetry gauge %g out of sync with factor %g", g, f)
		}
		prev = f
	}
	if prev != 1 {
		t.Fatalf("full success window must restore factor 1, got %g", prev)
	}
}

// TestFencedServerReadmittedAfterProbes takes a server down, lets error
// observations fence it, then brings it back and asserts successful probes
// re-admit it — with the fence gauge and fence/unfence transition counters
// tracking each state change exactly once despite repeated observations.
func TestFencedServerReadmittedAfterProbes(t *testing.T) {
	sc, q, tel := buildWithTelemetry(t)
	const server = "S2"

	fenced := func() float64 {
		v, ok := tel.Metrics().GaugeValue("qcc.fenced", server)
		if !ok {
			t.Fatal("fence gauge must exist after an observation")
		}
		return v
	}
	fences := func() int64 { return tel.Metrics().CounterValue("qcc.fences", server) }
	unfences := func() int64 { return tel.Metrics().CounterValue("qcc.unfences", server) }

	sc.Servers[server].SetDown(true)
	// Repeated down errors: one fence transition, gauge pinned at 1.
	for i := 0; i < 3; i++ {
		q.ObserveError(server, &remote.ErrServerDown{ID: server})
	}
	if !q.Avail.IsDown(server) {
		t.Fatal("server must be fenced after down errors")
	}
	if got := fences(); got != 1 {
		t.Fatalf("repeated down errors must count one fence transition, got %d", got)
	}
	if got := fenced(); got != 1 {
		t.Fatalf("fence gauge must read 1, got %g", got)
	}
	// A fenced server is calibrated to +Inf so the optimizer never picks it.
	est := q.CalibrateFragment(fragKey(server), remote.CostEstimate{TotalMS: 10}, true)
	if !math.IsInf(est.TotalMS, 1) {
		t.Fatalf("fenced server must cost +Inf, got %g", est.TotalMS)
	}

	// Probes keep failing while it is down: still fenced, still one event.
	q.ProbeNow()
	if !q.Avail.IsDown(server) || fences() != 1 {
		t.Fatal("failed probes must not flap the fence state")
	}

	// Recovery: the next probe sweep re-admits the server.
	sc.Servers[server].SetDown(false)
	q.ProbeNow()
	if q.Avail.IsDown(server) {
		t.Fatal("successful probe must re-admit the server")
	}
	if got := unfences(); got != 1 {
		t.Fatalf("recovery must count one unfence transition, got %d", got)
	}
	if got := fenced(); got != 0 {
		t.Fatalf("fence gauge must read 0 after recovery, got %g", got)
	}
	est = q.CalibrateFragment(fragKey(server), remote.CostEstimate{TotalMS: 10}, true)
	if math.IsInf(est.TotalMS, 1) {
		t.Fatal("re-admitted server must be costed finitely again")
	}
	// Further successful probes are not transitions.
	q.ProbeNow()
	if got := unfences(); got != 1 {
		t.Fatalf("steady up state must not count more unfences, got %d", got)
	}
}

// TestDownEventsCountTransitions pins the transition semantics MarkDown and
// MarkUp report: only edges count, and DownEvents aggregates the down edges.
func TestDownEventsCountTransitions(t *testing.T) {
	a := qcc.NewAvailability(qcc.AvailabilityConfig{})
	if !a.MarkDown("X") {
		t.Fatal("first MarkDown must report a transition")
	}
	if a.MarkDown("X") {
		t.Fatal("repeated MarkDown must not report a transition")
	}
	if !a.MarkUp("X") {
		t.Fatal("MarkUp from down must report a transition")
	}
	if a.MarkUp("X") {
		t.Fatal("repeated MarkUp must not report a transition")
	}
	if a.MarkUp("Y") {
		t.Fatal("MarkUp on a never-down server must not report a transition")
	}
	a.MarkDown("X")
	if got := a.DownEvents("X"); got != 2 {
		t.Fatalf("DownEvents must count down transitions, got %d", got)
	}
}

package qcc

import (
	"math"
	"sync"

	"repro/internal/metawrapper"
	"repro/internal/optimizer"
	"repro/internal/telemetry"
)

// RerouteConfig tunes runtime fragment rerouting — the paper's extension for
// long-running queries ("we could extend our method to periodically re-check
// the load and switch data sources if needed", §6).
type RerouteConfig struct {
	// Enabled turns the rerouter on.
	Enabled bool
	// Improvement is the minimum fractional cost improvement an alternative
	// must offer to displace the compiled choice (default 0.25 — switching
	// has plan-cache and cost-estimate risk, so it takes a clear win).
	Improvement float64
}

func (c *RerouteConfig) fill() {
	if c.Improvement == 0 {
		c.Improvement = 0.25
	}
}

// Rerouter implements integrator.RuntimeRerouter: just before a fragment
// dispatches, it re-explains the fragment on every candidate server with
// CURRENT calibration (compile time may be arbitrarily stale for queued or
// rotation-cached plans) and switches when another source is now clearly
// cheaper — e.g. the compiled target went down or its load spiked after
// compilation.
type Rerouter struct {
	mu       sync.Mutex
	cfg      RerouteConfig
	mw       *metawrapper.MetaWrapper
	switched int64
	checked  int64
	tel      *telemetry.Telemetry
}

// NewRerouter builds the rerouter over the production meta-wrapper.
func NewRerouter(cfg RerouteConfig, mw *metawrapper.MetaWrapper) *Rerouter {
	cfg.fill()
	return &Rerouter{cfg: cfg, mw: mw}
}

// SetTelemetry installs the observability subsystem: dispatch-time checks
// and switches feed counters. Nil disables.
func (r *Rerouter) SetTelemetry(t *telemetry.Telemetry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tel = t
}

// Switched reports how many fragments were moved at dispatch time, and how
// many dispatches were checked.
func (r *Rerouter) Switched() (switched, checked int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.switched, r.checked
}

// RerouteFragment implements integrator.RuntimeRerouter.
func (r *Rerouter) RerouteFragment(choice optimizer.FragmentChoice) *optimizer.FragmentChoice {
	if !r.cfg.Enabled {
		return nil
	}
	r.mu.Lock()
	r.checked++
	tel := r.tel
	r.mu.Unlock()
	tel.Active().Counter("qcc.reroute_checks", "").Inc()

	currentCost := math.Inf(1)
	best := choice
	bestCost := math.Inf(1)
	for _, serverID := range choice.Spec.Candidates {
		cands, err := r.mw.ExplainFragment(serverID, choice.Spec.Stmt)
		if err != nil {
			continue
		}
		for _, c := range cands {
			cost := c.Plan.Est.TotalMS
			if math.IsInf(cost, 1) {
				continue
			}
			if serverID == choice.ServerID && cost < currentCost {
				currentCost = cost
			}
			if cost < bestCost {
				bestCost = cost
				best = optimizer.FragmentChoice{
					Spec:      choice.Spec,
					ServerID:  serverID,
					Plan:      c.Plan,
					RawEst:    c.RawEst,
					CostKnown: c.CostKnown,
				}
			}
		}
	}
	if best.ServerID == choice.ServerID {
		return nil
	}
	// The compiled target may be fenced (infinite current cost): switch
	// unconditionally. Otherwise require a clear improvement.
	if !math.IsInf(currentCost, 1) && bestCost > currentCost*(1-r.cfg.Improvement) {
		return nil
	}
	r.mu.Lock()
	r.switched++
	r.mu.Unlock()
	tel.Active().Counter("qcc.reroute_switches", best.ServerID).Inc()
	return &best
}

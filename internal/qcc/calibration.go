// Package qcc implements the paper's primary contribution: the Query Cost
// Calibrator. QCC attaches to the meta-wrapper and the integrator and
//
//   - learns per-server and per-(server, fragment) cost calibration factors
//     from (estimated cost, observed response time) pairs (§3.1);
//   - maintains an II-level workload calibration factor (§3.2);
//   - probes source availability with daemon programs and fences off down
//     servers by calibrating their costs to +Inf (§3.3);
//   - dynamically adjusts its recalibration cycle from factor drift (§3.4);
//   - folds a reliability factor from observed errors into the calibrated
//     cost (§2, §3.5); and
//   - recommends round-robin plan rotations for load distribution at the
//     fragment and global levels (§4), deriving alternative global plans
//     with a simulated (statistics-only) federated system (§2, §4.2).
//
// QCC never modifies the optimizer: it only adjusts the costs the optimizer
// sees, exactly as the paper's transparent design prescribes.
package qcc

import (
	"math"
	"sort"
	"sync"

	"repro/internal/metawrapper"
	"repro/internal/simclock"
)

// samplePair is one (estimated, observed) observation.
type samplePair struct {
	at       simclock.Time
	est, obs float64
}

// history is a time-windowed series of observation pairs. The calibration
// factor is the ratio of the average runtime cost to the average estimated
// cost over the window, exactly as §3.1 defines it.
type history struct {
	samples []samplePair
	maxLen  int
	maxAge  simclock.Time
}

func newHistory(maxLen int, maxAge simclock.Time) *history {
	return &history{maxLen: maxLen, maxAge: maxAge}
}

func (h *history) add(at simclock.Time, est, obs float64) {
	h.samples = append(h.samples, samplePair{at: at, est: est, obs: obs})
	if len(h.samples) > h.maxLen {
		h.samples = h.samples[len(h.samples)-h.maxLen:]
	}
}

func (h *history) prune(now simclock.Time) {
	if h.maxAge <= 0 {
		return
	}
	cut := 0
	for cut < len(h.samples) && now-h.samples[cut].at > h.maxAge {
		cut++
	}
	if cut > 0 {
		h.samples = h.samples[cut:]
	}
}

// factor returns (avg observed / avg estimated, sample count).
func (h *history) factor(now simclock.Time) (float64, int) {
	h.prune(now)
	var sumEst, sumObs float64
	n := 0
	for _, s := range h.samples {
		if s.est <= 0 {
			continue
		}
		sumEst += s.est
		sumObs += s.obs
		n++
	}
	if n == 0 || sumEst <= 0 {
		return 1, 0
	}
	return sumObs / sumEst, n
}

// meanObserved returns the average observed value (for cost seeding of
// sources without estimates) and the sample count.
func (h *history) meanObserved(now simclock.Time) (float64, int) {
	h.prune(now)
	if len(h.samples) == 0 {
		return 0, 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += s.obs
	}
	return sum / float64(len(h.samples)), len(h.samples)
}

// CalibrationConfig tunes the calibration store.
type CalibrationConfig struct {
	// WindowSize bounds each history's sample count (default 64).
	WindowSize int
	// MaxAge expires samples older than this much simulated time (default
	// 120000 ms); expiry is what lets factors track load changes.
	MaxAge simclock.Time
	// PerFragment enables per-(server, fragment) factors on top of the
	// per-server factor (default true). The ablation benchmarks turn this
	// off to quantify its contribution.
	PerFragment bool
}

func (c *CalibrationConfig) fill() {
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.MaxAge == 0 {
		c.MaxAge = 120000
	}
}

// Calibration is the factor store. Factors become visible to the optimizer
// only when published — the paper's calibration cycle (§3.4).
type Calibration struct {
	mu  sync.Mutex
	cfg CalibrationConfig

	perServer   map[string]*history
	perFragment map[metawrapper.FragmentKey]*history
	// perServerFirst tracks (estimated, observed) time-to-first-row pairs.
	// Streaming execution observes the first batch's arrival separately from
	// the total response, so FirstTupleMS gets its own correction instead of
	// inheriting the total-time factor.
	perServerFirst map[string]*history
	// fileSeeds records observed costs of fragments whose wrappers provide
	// no estimate, keyed by fragment.
	fileSeeds map[metawrapper.FragmentKey]*history
	ii        *history

	// probeBaseline and probeLatest drive the probe-derived fallback factor:
	// baseline is the smallest probe time seen (the calm reference), latest
	// the most recent observation.
	probeBaseline map[string]float64
	probeLatest   map[string]float64

	// published snapshots, refreshed by Publish.
	pubServer      map[string]float64
	pubServerFirst map[string]float64
	pubFragment    map[metawrapper.FragmentKey]float64
	pubII          float64
	pubProbe       map[string]float64
	publishes      int64

	// hook receives each publish's factor snapshot (telemetry timelines).
	hook PublishHook
}

// PublishHook receives the effective per-server factors and the II workload
// factor each time Publish runs. It is invoked AFTER the calibration lock is
// released — implementations may freely call back into the store.
type PublishHook func(at simclock.Time, serverFactors map[string]float64, iiFactor float64)

// NewCalibration builds a calibration store.
func NewCalibration(cfg CalibrationConfig) *Calibration {
	cfg.fill()
	return &Calibration{
		cfg:            cfg,
		perServer:      map[string]*history{},
		perFragment:    map[metawrapper.FragmentKey]*history{},
		perServerFirst: map[string]*history{},
		fileSeeds:      map[metawrapper.FragmentKey]*history{},
		ii:             newHistory(cfg.WindowSize, cfg.MaxAge),
		probeBaseline:  map[string]float64{},
		probeLatest:    map[string]float64{},
		pubServer:      map[string]float64{},
		pubServerFirst: map[string]float64{},
		pubFragment:    map[metawrapper.FragmentKey]float64{},
		pubII:          1,
		pubProbe:       map[string]float64{},
	}
}

// RecordRun ingests one fragment execution observation.
func (c *Calibration) RecordRun(at simclock.Time, key metawrapper.FragmentKey, est, obs float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if est <= 0 {
		// No wrapper estimate (file source): feed the seed store instead.
		h := c.fileSeeds[key]
		if h == nil {
			h = newHistory(c.cfg.WindowSize, c.cfg.MaxAge)
			c.fileSeeds[key] = h
		}
		h.add(at, 0, obs)
		return
	}
	hs := c.perServer[key.ServerID]
	if hs == nil {
		hs = newHistory(c.cfg.WindowSize, c.cfg.MaxAge)
		c.perServer[key.ServerID] = hs
	}
	hs.add(at, est, obs)
	if c.cfg.PerFragment {
		hf := c.perFragment[key]
		if hf == nil {
			hf = newHistory(c.cfg.WindowSize, c.cfg.MaxAge)
			c.perFragment[key] = hf
		}
		hf.add(at, est, obs)
	}
}

// RecordFirstRow ingests one (estimated first-tuple, observed first-row)
// pair for a server. Streaming fragments report this alongside the total
// observation so the two latency components calibrate independently.
func (c *Calibration) RecordFirstRow(at simclock.Time, serverID string, est, obs float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if est <= 0 {
		return
	}
	h := c.perServerFirst[serverID]
	if h == nil {
		h = newHistory(c.cfg.WindowSize, c.cfg.MaxAge)
		c.perServerFirst[serverID] = h
	}
	h.add(at, est, obs)
}

// RecordII ingests one II merge observation (§3.2).
func (c *Calibration) RecordII(at simclock.Time, est, obs float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if est <= 0 {
		return
	}
	c.ii.add(at, est, obs)
}

// RecordProbe ingests an availability-daemon probe time.
func (c *Calibration) RecordProbe(serverID string, rtt float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if base, ok := c.probeBaseline[serverID]; !ok || rtt < base {
		c.probeBaseline[serverID] = rtt
	}
	c.probeLatest[serverID] = rtt
}

// SetPublishHook installs (or clears, with nil) the per-publish snapshot
// hook.
func (c *Calibration) SetPublishHook(h PublishHook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = h
}

// Publish recomputes the published factors from current histories and
// returns the maximum relative drift across servers — the signal the cycle
// controller adapts on (§3.4).
func (c *Calibration) Publish(now simclock.Time) float64 {
	c.mu.Lock()
	c.publishes++
	maxDrift := 0.0
	for id, h := range c.perServer {
		f, n := h.factor(now)
		if n == 0 {
			f = c.probeFactorLocked(id)
		}
		if prev, ok := c.pubServer[id]; ok && prev > 0 {
			drift := math.Abs(f-prev) / prev
			if drift > maxDrift {
				maxDrift = drift
			}
		}
		c.pubServer[id] = f
	}
	for id, h := range c.perServerFirst {
		f, n := h.factor(now)
		if n == 0 {
			// Stale: let FirstRowFactor fall back to the combined factor.
			delete(c.pubServerFirst, id)
			continue
		}
		c.pubServerFirst[id] = f
	}
	for key, h := range c.perFragment {
		f, n := h.factor(now)
		if n == 0 {
			delete(c.pubFragment, key)
			continue
		}
		c.pubFragment[key] = f
	}
	f, n := c.ii.factor(now)
	if n > 0 {
		c.pubII = f
	}
	for id := range c.probeLatest {
		c.pubProbe[id] = c.probeFactorLocked(id)
	}
	// Snapshot for the hook while locked, invoke after unlocking: the hook
	// may read ServerFactor and friends, which take this lock.
	hook := c.hook
	var snap map[string]float64
	var iiFactor float64
	if hook != nil {
		snap = make(map[string]float64, len(c.pubServer)+len(c.pubProbe))
		for id := range c.pubServer {
			snap[id] = c.serverFactorLocked(id)
		}
		for id := range c.pubProbe {
			if _, ok := snap[id]; !ok {
				snap[id] = c.serverFactorLocked(id)
			}
		}
		iiFactor = c.pubII
	}
	c.mu.Unlock()
	if hook != nil {
		hook(now, snap, iiFactor)
	}
	return maxDrift
}

// Publishes returns how many publish cycles have run.
func (c *Calibration) Publishes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.publishes
}

func (c *Calibration) probeFactorLocked(serverID string) float64 {
	base := c.probeBaseline[serverID]
	latest := c.probeLatest[serverID]
	if base <= 0 || latest <= 0 {
		return 1
	}
	f := latest / base
	if f < 1 {
		f = 1
	}
	return f
}

// FragmentFactor returns the published factor for a fragment on a server:
// the per-fragment factor when fresh, else the per-server factor, else 1.
// The probe-derived factor additionally acts as a FLOOR: query-history
// factors go stale the moment conditions change (no new observations arrive
// for servers the router avoids, and old ones linger until they age out),
// while the availability daemon's probes always reflect the network and
// queueing conditions of the last probe cycle. Any sensor showing distress
// raises the calibrated cost; the probe's recovery is immediate.
func (c *Calibration) FragmentFactor(key metawrapper.FragmentKey) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	factor := 1.0
	found := false
	if c.cfg.PerFragment {
		if f, ok := c.pubFragment[key]; ok {
			factor, found = f, true
		}
	}
	if !found {
		if f, ok := c.pubServer[key.ServerID]; ok {
			factor, found = f, true
		}
	}
	if probe, ok := c.pubProbe[key.ServerID]; ok && probe > factor {
		factor = probe
	}
	return factor
}

// FirstRowFactor returns the published time-to-first-row factor for a
// server and whether one is available. Callers fall back to the combined
// fragment factor when no streaming observations have been published.
func (c *Calibration) FirstRowFactor(serverID string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.pubServerFirst[serverID]
	return f, ok
}

// ServerFactor returns the published per-server factor (1 when unknown).
func (c *Calibration) ServerFactor(serverID string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverFactorLocked(serverID)
}

func (c *Calibration) serverFactorLocked(serverID string) float64 {
	if f, ok := c.pubServer[serverID]; ok {
		return f
	}
	if f, ok := c.pubProbe[serverID]; ok {
		return f
	}
	return 1
}

// IIFactor returns the published workload calibration factor.
func (c *Calibration) IIFactor() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pubII
}

// SeedEstimate returns a cost seed for a fragment whose source offers no
// estimate: the mean observed cost of past runs, or the server's probe time
// scaled by seedMultiplier when the fragment has never run.
func (c *Calibration) SeedEstimate(now simclock.Time, key metawrapper.FragmentKey, seedMultiplier float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.fileSeeds[key]; ok {
		if mean, n := h.meanObserved(now); n > 0 {
			return mean
		}
	}
	if latest := c.probeLatest[key.ServerID]; latest > 0 {
		return latest * seedMultiplier
	}
	return 0
}

// KnownServers lists servers with any published state, sorted.
func (c *Calibration) KnownServers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := map[string]bool{}
	for id := range c.pubServer {
		set[id] = true
	}
	for id := range c.pubProbe {
		set[id] = true
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

package qcc

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/optimizer"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/wrapper"
)

// SimulatedFederation is the paper's "simulated federated system that has
// the same II, meta-wrapper, and wrappers as the original run time system as
// well as the simulated catalog and virtual tables, to capture database
// statistics and server characteristics without storing the actual data"
// (§2). QCC uses it to derive alternative query plans and perform what-if
// analysis for query routing without touching the production path.
type SimulatedFederation struct {
	// MW is the simulated meta-wrapper over virtual servers.
	MW *metawrapper.MetaWrapper
	// Opt is the simulated global optimizer.
	Opt *optimizer.Optimizer
	// Servers are the statistics-only server clones.
	Servers map[string]*remote.Server
}

// NewSimulatedFederation clones the real servers into statistics-only
// shells: same hardware configuration, same table schemas, same indexes,
// same statistics — no rows. The real topology and catalog are shared (both
// are consulted read-only during explain).
func NewSimulatedFederation(real map[string]*remote.Server, topo *network.Topology, cat *catalog.Catalog, iiNode *remote.Server, calib metawrapper.Calibrator) (*SimulatedFederation, error) {
	virtual := map[string]*remote.Server{}
	var wrappers []wrapper.Wrapper
	for id, rs := range real {
		vs := remote.NewServer(rs.Config())
		for _, tname := range rs.Tables() {
			rt := rs.Table(tname)
			vt := storage.NewTable(tname, rt.Schema())
			vt.SetVirtualStats(rt.Stats().Clone())
			for _, im := range rt.IndexMetas() {
				if _, err := vt.CreateIndex(im.Name, im.Column, im.Kind); err != nil {
					return nil, fmt.Errorf("qcc: cloning index %s on %s: %w", im.Name, id, err)
				}
			}
			vs.AddTable(vt)
		}
		virtual[id] = vs
		wrappers = append(wrappers, wrapper.NewRelational(vs, topo))
	}
	mw := metawrapper.New(wrappers...)
	if calib != nil {
		mw.SetCalibrator(calib)
	}
	return &SimulatedFederation{
		MW:      mw,
		Opt:     &optimizer.Optimizer{Catalog: cat, MW: mw, IINode: iiNode},
		Servers: virtual,
	}, nil
}

// Enumerate derives up to topK alternative global plans with calibrated
// costs, without executing anything (topK <= 0 returns all).
func (sf *SimulatedFederation) Enumerate(stmt *sqlparser.SelectStmt, topK int) ([]*optimizer.GlobalPlan, error) {
	return sf.Opt.Enumerate(stmt, topK)
}

// Refresh re-clones statistics from the real servers into the virtual
// tables — the paper's "simulated catalog refreshes", one of the cycles QCC
// adjusts dynamically (§3.4). Update workloads drift the real statistics;
// without refresh, what-if analysis would answer from an aging snapshot.
// New tables (e.g. applied placement recommendations) are cloned in;
// vanished tables are left untouched (virtual shells are harmless).
func (sf *SimulatedFederation) Refresh(real map[string]*remote.Server) error {
	for id, rs := range real {
		vs := sf.Servers[id]
		if vs == nil {
			continue
		}
		for _, tname := range rs.Tables() {
			rt := rs.Table(tname)
			vt := vs.Table(tname)
			if vt == nil {
				vt = storage.NewTable(tname, rt.Schema())
				for _, im := range rt.IndexMetas() {
					if _, err := vt.CreateIndex(im.Name, im.Column, im.Kind); err != nil {
						return fmt.Errorf("qcc: refresh index %s on %s: %w", im.Name, id, err)
					}
				}
				vs.AddTable(vt)
			}
			vt.SetVirtualStats(rt.Stats().Clone())
		}
	}
	return nil
}

// RefreshEvery schedules periodic catalog refreshes on the clock; returns a
// cancel function.
func (sf *SimulatedFederation) RefreshEvery(clock *simclock.Clock, interval simclock.Time, real map[string]*remote.Server) simclock.Cancel {
	return clock.Every(interval, func(simclock.Time) simclock.Time {
		sf.Refresh(real) //nolint:errcheck // periodic best-effort refresh
		return 0
	})
}

// EnumerateByMasking reproduces the paper's §4.2 trick verbatim: instead of
// asking the optimizer for all combinations, it runs the optimizer in
// explain mode once per fragment→server assignment, masking every other
// candidate server ("adjusting cost functions of R1 and R2 to infinity so
// that only the query fragment processing plans at S1 and S2 will be
// considered"). Each run yields the winner for that server combination; the
// union over combinations is the alternative-plan set. For the paper's Q6
// with two fragments × two servers each, this is exactly four explain runs
// covering nine global plans.
func (sf *SimulatedFederation) EnumerateByMasking(stmt *sqlparser.SelectStmt) ([]*optimizer.GlobalPlan, int, error) {
	decomp, err := optimizer.Decompose(stmt, sf.Opt.Catalog)
	if err != nil {
		return nil, 0, err
	}
	// Collect the union of candidate servers across fragments.
	candidateSets := make([][]string, len(decomp.Fragments))
	union := map[string]bool{}
	for i, f := range decomp.Fragments {
		candidateSets[i] = f.Candidates
		for _, s := range f.Candidates {
			union[s] = true
		}
	}
	var plans []*optimizer.GlobalPlan
	seen := map[string]bool{}
	runs := 0
	// Iterate the cartesian product of per-fragment server assignments.
	assignment := make([]string, len(candidateSets))
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(candidateSets) {
			allowed := map[string]bool{}
			for _, s := range assignment {
				allowed[s] = true
			}
			for s := range union {
				sf.MW.Mask(s, !allowed[s])
			}
			defer func() {
				for s := range union {
					sf.MW.Mask(s, false)
				}
			}()
			runs++
			gp, err := sf.Opt.Optimize(stmt)
			if err != nil {
				// This combination is infeasible (e.g. a fenced server);
				// skip it rather than failing the whole analysis.
				return nil
			}
			if !seen[gp.RouteKey()] {
				seen[gp.RouteKey()] = true
				plans = append(plans, gp)
			}
			return nil
		}
		for _, s := range candidateSets[i] {
			assignment[i] = s
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, runs, err
	}
	if len(plans) == 0 {
		return nil, runs, fmt.Errorf("qcc: masking enumeration found no feasible plan")
	}
	return plans, runs, nil
}

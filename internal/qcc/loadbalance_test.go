package qcc_test

import (
	"testing"

	"repro/internal/qcc"
	"repro/internal/scenario"
)

func buildLB(t *testing.T, cfg qcc.LBConfig) (*scenario.Scenario, *qcc.QCC) {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{
		Scale: 100,
		// Equal links make the three replicas near-equivalent so rotation
		// sets are non-trivial.
		Latencies: map[string]float64{"S1": 10, "S2": 10, "S3": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{Clock: sc.Clock, MW: sc.MW, LB: cfg}, sc.II)
	return sc, q
}

func serversUsed(t *testing.T, sc *scenario.Scenario, query string, n int) map[string]int {
	t.Helper()
	used := map[string]int{}
	for i := 0; i < n; i++ {
		res, err := sc.II.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Plan.Fragments {
			used[f.ServerID]++
		}
	}
	return used
}

func TestLBOffAlwaysWinner(t *testing.T) {
	sc, q := buildLB(t, qcc.LBConfig{Mode: qcc.LBOff})
	used := serversUsed(t, sc, scanQuery, 6)
	if len(used) != 1 {
		t.Fatalf("LB off must pin one server: %v", used)
	}
	if q.LB.Rotations() != 0 {
		t.Fatalf("rotations: %d", q.LB.Rotations())
	}
}

func TestLBGlobalRotatesAcrossServers(t *testing.T) {
	// A generous closeness band groups all three replicas.
	sc, q := buildLB(t, qcc.LBConfig{Mode: qcc.LBGlobal, Closeness: 3.0})
	used := serversUsed(t, sc, scanQuery, 9)
	if len(used) < 2 {
		t.Fatalf("global LB must spread load: %v", used)
	}
	if q.LB.Rotations() == 0 {
		t.Fatal("no rotations recorded")
	}
	// Distribution is balanced within a factor of the rotation length.
	for id, n := range used {
		if n == 0 || n > 6 {
			t.Fatalf("unbalanced rotation at %s: %v", id, used)
		}
	}
}

func TestLBGlobalTightClosenessPinsCheapest(t *testing.T) {
	// With near-zero closeness only the cheapest plan qualifies.
	sc, _ := buildLB(t, qcc.LBConfig{Mode: qcc.LBGlobal, Closeness: 0.0001})
	used := serversUsed(t, sc, scanQuery, 6)
	if len(used) != 1 {
		t.Fatalf("tight closeness must pin the winner: %v", used)
	}
}

func TestLBFragmentRequiresIdenticalPlans(t *testing.T) {
	sc, q := buildLB(t, qcc.LBConfig{Mode: qcc.LBFragment, Closeness: 3.0})
	used := serversUsed(t, sc, scanQuery, 9)
	// Replicas are identical (same seed), so the same physical plan exists
	// on all three and fragment-level rotation can spread.
	if len(used) < 2 {
		t.Fatalf("fragment LB must spread across identical plans: %v", used)
	}
	if q.LB.Rotations() == 0 {
		t.Fatal("no rotations recorded")
	}
}

func TestLBWorkloadThresholdGates(t *testing.T) {
	sc, _ := buildLB(t, qcc.LBConfig{
		Mode:              qcc.LBGlobal,
		Closeness:         3.0,
		WorkloadThreshold: 1e12, // unreachable
	})
	used := serversUsed(t, sc, scanQuery, 6)
	if len(used) != 1 {
		t.Fatalf("below-threshold query must not be balanced: %v", used)
	}
}

func TestLBSetModeResets(t *testing.T) {
	sc, q := buildLB(t, qcc.LBConfig{Mode: qcc.LBGlobal, Closeness: 3.0})
	serversUsed(t, sc, scanQuery, 3)
	q.LB.SetMode(qcc.LBOff)
	used := serversUsed(t, sc, scanQuery, 4)
	if len(used) != 1 {
		t.Fatalf("after turning LB off: %v", used)
	}
}

func TestLBModeString(t *testing.T) {
	if qcc.LBOff.String() != "off" || qcc.LBFragment.String() != "fragment" || qcc.LBGlobal.String() != "global" {
		t.Fatal("mode names")
	}
}

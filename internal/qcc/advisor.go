package qcc

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/optimizer"
)

// The placement advisor implements the paper's closing future-work item:
// "incorporation of data placement strategies in conjunction with QCC into
// the proposed architecture". It mines the explain table — the record of
// which fragments ran where at what calibrated cost — together with QCC's
// calibration factors, and recommends replicating the hottest nicknames
// from persistently-slow (loaded) servers onto cooler ones, so the
// optimizer gains an equivalent data source to route to.

// PlacementRecommendation is one advised replication.
type PlacementRecommendation struct {
	// Nickname to replicate.
	Nickname string
	// From is the currently-hosting hot server.
	From string
	// To is the advised target server.
	To string
	// WorkloadMS is the calibrated per-compilation workload the nickname
	// contributed on the hot server.
	WorkloadMS float64
	// Reason is a human-readable justification.
	Reason string
}

// AdvisorConfig tunes the advisor.
type AdvisorConfig struct {
	// MinFactor is the calibration factor above which a server counts as
	// persistently hot (default 1.5).
	MinFactor float64
	// MaxRecommendations bounds the output (default 3).
	MaxRecommendations int
}

func (c *AdvisorConfig) fill() {
	if c.MinFactor == 0 {
		c.MinFactor = 1.5
	}
	if c.MaxRecommendations == 0 {
		c.MaxRecommendations = 3
	}
}

// AdvisePlacement analyzes the explain history and current calibration
// state and returns ranked replication recommendations. Only nicknames that
// are NOT already hosted by a cool candidate are recommended (replication
// adds an equivalent source; it is pointless when one already exists).
func (q *QCC) AdvisePlacement(cat *catalog.Catalog, entries []optimizer.ExplainEntry, cfg AdvisorConfig) []PlacementRecommendation {
	cfg.fill()

	// Workload per (server, nickname): calibrated estimate attributed to
	// every nickname a fragment covers.
	perServerNick := map[string]map[string]float64{}
	perServer := map[string]float64{}
	for _, e := range entries {
		for fragID, server := range e.FragmentServers {
			cost := e.FragmentEstMS[fragID]
			perServer[server] += cost
			for _, nick := range e.FragmentTables[fragID] {
				if perServerNick[server] == nil {
					perServerNick[server] = map[string]float64{}
				}
				perServerNick[server][nick] += cost
			}
		}
	}
	if len(perServer) == 0 {
		return nil
	}

	// Candidate servers: everything QCC has seen plus everything the
	// catalog places data on (a cool server may never have been routed to,
	// which is exactly why it is a good replication target).
	serverSet := map[string]bool{}
	for _, s := range q.Calib.KnownServers() {
		serverSet[s] = true
	}
	for s := range perServer {
		serverSet[s] = true
	}
	for _, name := range cat.Names() {
		if n, err := cat.Lookup(name); err == nil {
			for _, p := range n.Placements {
				serverSet[p.ServerID] = true
			}
		}
	}
	servers := make([]string, 0, len(serverSet))
	for s := range serverSet {
		servers = append(servers, s)
	}
	sort.Strings(servers)

	heat := func(s string) float64 { return q.Calib.ServerFactor(s) * q.Rel.Factor(s) }

	// Coolest viable target: lowest heat, not fenced.
	var recs []PlacementRecommendation
	for _, hot := range servers {
		if heat(hot) < cfg.MinFactor || q.Avail.IsDown(hot) {
			continue
		}
		type nickLoad struct {
			nick string
			load float64
		}
		var loads []nickLoad
		for nick, load := range perServerNick[hot] {
			loads = append(loads, nickLoad{nick, load})
		}
		sort.Slice(loads, func(i, j int) bool {
			if loads[i].load != loads[j].load {
				return loads[i].load > loads[j].load
			}
			return loads[i].nick < loads[j].nick
		})
		for _, nl := range loads {
			n, err := cat.Lookup(nl.nick)
			if err != nil {
				continue
			}
			// Skip when a cool host already exists: the optimizer can
			// already route around the hot server.
			hasCool := false
			for _, p := range n.Placements {
				if p.ServerID != hot && heat(p.ServerID) < cfg.MinFactor && !q.Avail.IsDown(p.ServerID) {
					hasCool = true
					break
				}
			}
			if hasCool {
				continue
			}
			target := ""
			best := 0.0
			for _, cand := range servers {
				if q.Avail.IsDown(cand) || n.PlacementOn(cand) != nil {
					continue
				}
				h := heat(cand)
				if h >= cfg.MinFactor {
					continue
				}
				if target == "" || h < best {
					target, best = cand, h
				}
			}
			if target == "" {
				continue
			}
			recs = append(recs, PlacementRecommendation{
				Nickname:   nl.nick,
				From:       hot,
				To:         target,
				WorkloadMS: nl.load,
				Reason: fmt.Sprintf("%s carries %.0fms of calibrated workload for %q at factor %.2f; %s is cool (factor %.2f) and does not host it",
					hot, nl.load, nl.nick, heat(hot), target, best),
			})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].WorkloadMS != recs[j].WorkloadMS {
			return recs[i].WorkloadMS > recs[j].WorkloadMS
		}
		return recs[i].Nickname < recs[j].Nickname
	})
	if len(recs) > cfg.MaxRecommendations {
		recs = recs[:cfg.MaxRecommendations]
	}
	return recs
}

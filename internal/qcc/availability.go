package qcc

import (
	"context"
	"errors"
	"sync"

	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// AvailabilityConfig tunes down-detection (§3.3).
type AvailabilityConfig struct {
	// ProbeInterval is the daemon cadence in simulated ms (default 1000).
	ProbeInterval simclock.Time
}

func (c *AvailabilityConfig) fill() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 1000
	}
}

// Availability tracks which servers are up. Down servers are calibrated to
// +Inf so the optimizer never routes to them; the daemon's status reports
// "allow QCC to make unavailable remote sources be considered by II again
// once the remote resources become available" (§3.3).
type Availability struct {
	mu   sync.Mutex
	cfg  AvailabilityConfig
	down map[string]bool
	// downEvents counts transitions to down, for reports.
	downEvents map[string]int
}

// NewAvailability builds the tracker.
func NewAvailability(cfg AvailabilityConfig) *Availability {
	cfg.fill()
	return &Availability{cfg: cfg, down: map[string]bool{}, downEvents: map[string]int{}}
}

// MarkDown fences a server off. It reports whether this call was the
// up→down transition (false when the server was already fenced).
func (a *Availability) MarkDown(serverID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down[serverID] {
		return false
	}
	a.down[serverID] = true
	a.downEvents[serverID]++
	return true
}

// MarkUp restores a server. It reports whether this call was the down→up
// transition (false when the server was already up).
func (a *Availability) MarkUp(serverID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.down[serverID] {
		return false
	}
	a.down[serverID] = false
	return true
}

// IsDown reports the fenced state.
func (a *Availability) IsDown(serverID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.down[serverID]
}

// DownEvents returns how many times a server transitioned to down.
func (a *Availability) DownEvents(serverID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.downEvents[serverID]
}

// IsDownError classifies errors that indicate source unavailability rather
// than a transient execution failure.
func IsDownError(err error) bool {
	var sd *remote.ErrServerDown
	if errors.As(err, &sd) {
		return true
	}
	var np *network.ErrPartitioned
	return errors.As(err, &np)
}

// StartDaemon schedules the availability daemon on the clock: every probe
// interval it probes every wrapped server through MW, marking servers down
// on failure and up on success, and feeding probe times into the
// calibration store. It returns a cancel function.
func (a *Availability) StartDaemon(clock *simclock.Clock, mw *metawrapper.MetaWrapper) simclock.Cancel {
	return clock.Every(a.cfg.ProbeInterval, func(now simclock.Time) simclock.Time {
		for _, id := range mw.Servers() {
			// MW reports the outcome to QCC's observer, which updates the
			// availability state and probe histories; nothing more to do
			// here. The daemon exists so probes happen even when no queries
			// flow.
			mw.Probe(context.Background(), id) //nolint:errcheck // outcome flows through the observer
		}
		return 0
	})
}

package qcc_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/metawrapper"
	"repro/internal/network"
	"repro/internal/qcc"
	"repro/internal/remote"
	"repro/internal/scenario"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
)

func build(t *testing.T) (*scenario.Scenario, *qcc.QCC) {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{
		Clock: sc.Clock,
		MW:    sc.MW,
	}, sc.II)
	return sc, q
}

const scanQuery = "SELECT SUM(o.o_amount) FROM orders AS o WHERE o.o_amount > 100"

// cacheQuery is a QT2-shaped (small ⋈ large) query: the fast server's
// optimizer picks the cache-reliant index-nested-loop plan, which collapses
// under update load — the crossover QCC must learn.
const cacheQuery = "SELECT SUM(o.o_amount) FROM customer AS c JOIN orders AS o ON o.o_custkey = c.c_id WHERE c.c_discount > 0.01"

func TestQCCLearnsLoadAndReroutes(t *testing.T) {
	sc, q := build(t)
	// Baseline: run the query a few times; note the preferred server.
	res, err := sc.II.Query(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	preferred := res.Plan.Fragments[0].ServerID
	// Load the preferred server heavily; execute so QCC observes the gap.
	sc.Servers[preferred].SetLoadLevel(1)
	for i := 0; i < 3; i++ {
		if _, err := sc.II.Query(cacheQuery); err != nil {
			t.Fatal(err)
		}
	}
	q.PublishNow()
	if f := q.Calib.ServerFactor(preferred); f <= 1.1 {
		t.Fatalf("factor for loaded server must rise: %g", f)
	}
	res, err = sc.II.Query(cacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Plan.Fragments[0].ServerID; got == preferred {
		t.Fatalf("query must reroute away from loaded %s", preferred)
	}
}

func TestQCCFactorsTrackLoadChanges(t *testing.T) {
	sc, q := build(t)
	if _, err := sc.II.Query(scanQuery); err != nil {
		t.Fatal(err)
	}
	res, _ := sc.II.Query(scanQuery)
	server := res.Plan.Fragments[0].ServerID
	sc.Servers[server].SetLoadLevel(1)
	for i := 0; i < 3; i++ {
		sc.II.Query(scanQuery) //nolint:errcheck
	}
	q.PublishNow()
	loadedFactor := q.Calib.ServerFactor(server)
	// Load clears; observations age out as the clock advances and new calm
	// observations arrive (after rerouting, force execution on the same
	// server via direct wrapper runs).
	sc.Servers[server].SetLoadLevel(0)
	stmt := sqlparser.MustParse(scanQuery)
	for i := 0; i < 6; i++ {
		cands, err := sc.MW.ExplainFragment(server, stmt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.MW.ExecuteFragment(context.Background(), server, stmt.String(), cands[0].Plan, cands[0].RawEst); err != nil {
			t.Fatal(err)
		}
		sc.Clock.Advance(10)
	}
	q.PublishNow()
	calmFactor := q.Calib.ServerFactor(server)
	if calmFactor >= loadedFactor {
		t.Fatalf("factor must fall when load clears: %g -> %g", loadedFactor, calmFactor)
	}
}

func TestQCCAvailabilityFencesDownServer(t *testing.T) {
	sc, q := build(t)
	res, err := sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	preferred := res.Plan.Fragments[0].ServerID
	sc.Servers[preferred].SetDown(true)
	q.ProbeNow()
	if !q.Avail.IsDown(preferred) {
		t.Fatal("probe must detect the down server")
	}
	// Calibrated cost for the fenced server is infinite.
	est := q.CalibrateFragment(metawrapper.FragmentKey{ServerID: preferred, Signature: "x"}, remote.CostEstimate{TotalMS: 10}, true)
	if !math.IsInf(est.TotalMS, 1) {
		t.Fatalf("fenced cost: %v", est.TotalMS)
	}
	// Queries keep working via the other servers, without retries: compile
	// already avoids the fenced server.
	res, err = sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Fragments[0].ServerID == preferred {
		t.Fatal("fenced server must not be routed to")
	}
	if res.Retried != 0 {
		t.Fatalf("fencing should avoid retries, got %d", res.Retried)
	}
	// Recovery: probe restores the server.
	sc.Servers[preferred].SetDown(false)
	q.ProbeNow()
	if q.Avail.IsDown(preferred) {
		t.Fatal("probe must restore the server")
	}
	if q.Avail.DownEvents(preferred) != 1 {
		t.Fatalf("down events: %d", q.Avail.DownEvents(preferred))
	}
}

func TestQCCReliabilitySteersAwayFromFlakyServer(t *testing.T) {
	sc, q := build(t)
	res, err := sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	flaky := res.Plan.Fragments[0].ServerID
	// Fail a burst of runs on the flaky server (transient failures, not
	// down): reliability factor rises, availability stays up.
	stmt := sqlparser.MustParse(scanQuery)
	for i := 0; i < 10; i++ {
		sc.Servers[flaky].InjectFailures(1)
		cands, err := sc.MW.ExplainFragment(flaky, stmt)
		if err != nil {
			t.Fatal(err)
		}
		sc.MW.ExecuteFragment(context.Background(), flaky, stmt.String(), cands[0].Plan, cands[0].RawEst) //nolint:errcheck
	}
	if q.Avail.IsDown(flaky) {
		t.Fatal("transient failures must not mark the server down")
	}
	if f := q.Rel.Factor(flaky); f <= 1.5 {
		t.Fatalf("reliability factor must rise: %g", f)
	}
	res, err = sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Fragments[0].ServerID == flaky {
		t.Fatal("fast but unreliable server must be avoided when alternatives exist")
	}
}

func TestQCCDynamicCycleAdapts(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{
		Clock: sc.Clock,
		MW:    sc.MW,
		Cycle: qcc.CycleConfig{Initial: 100, Min: 25, Max: 1000, Dynamic: true},
	}, sc.II)
	// Quiet period: intervals should grow.
	sc.Clock.Advance(2000)
	ivs := q.Cycle.Intervals()
	if len(ivs) < 2 || ivs[len(ivs)-1] <= ivs[0] {
		t.Fatalf("quiet period must slow the cycle: %v", ivs)
	}
	// A load spike with fresh observations should speed it back up.
	res, err := sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	server := res.Plan.Fragments[0].ServerID
	sc.Servers[server].SetLoadLevel(1)
	stmt := sqlparser.MustParse(scanQuery)
	before := q.Cycle.Interval()
	for i := 0; i < 4; i++ {
		cands, err := sc.MW.ExplainFragment(server, stmt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.MW.ExecuteFragment(context.Background(), server, stmt.String(), cands[0].Plan, cands[0].RawEst); err != nil {
			t.Fatal(err)
		}
		sc.Clock.Advance(before * 3 / 2)
	}
	// The controller may relax again once the factor stabilizes; what
	// matters is that the spike triggered at least one speed-up.
	spedUp := false
	for _, iv := range q.Cycle.Intervals() {
		if iv < before {
			spedUp = true
		}
	}
	if !spedUp {
		t.Fatalf("load spike must speed the cycle at least once: before=%v history=%v", before, q.Cycle.Intervals())
	}
}

func TestQCCStatsCounters(t *testing.T) {
	sc, q := build(t)
	if _, err := sc.II.Query(scanQuery); err != nil {
		t.Fatal(err)
	}
	compiles, runs, errs := q.Stats()
	if compiles == 0 || runs == 0 {
		t.Fatalf("counters: c=%d r=%d", compiles, runs)
	}
	if errs != 0 {
		t.Fatalf("unexpected errors: %d", errs)
	}
}

func TestQCCDetach(t *testing.T) {
	sc, q := build(t)
	q.Detach()
	// Without QCC, queries still work.
	if _, err := sc.II.Query(scanQuery); err != nil {
		t.Fatal(err)
	}
	_, runs, _ := q.Stats()
	if runs != 0 {
		t.Fatalf("detached QCC must not observe: %d", runs)
	}
}

func TestSimulatedFederationEnumeratesWithoutExecution(t *testing.T) {
	sc, q := build(t)
	sf, err := qcc.NewSimulatedFederation(sc.Servers, sc.Topo, sc.Catalog, sc.IINode, q)
	if err != nil {
		t.Fatal(err)
	}
	for id, vs := range sf.Servers {
		if vs.Table("orders") == nil || !vs.Table("orders").IsVirtual() {
			t.Fatalf("server %s tables must be virtual", id)
		}
		if vs.Table("orders").RowCount() != 0 {
			t.Fatal("virtual tables must hold no rows")
		}
	}
	stmt := sqlparser.MustParse(scanQuery)
	plans, err := sf.Enumerate(stmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 3 {
		t.Fatalf("expected plans from all three servers: %d", len(plans))
	}
	for _, s := range sc.Servers {
		if s.Executed() != 0 {
			t.Fatal("what-if must not execute on real servers")
		}
	}
	// Virtual estimates approximate real estimates.
	realPlans, err := sc.II.Optimizer().Enumerate(stmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plans[0].TotalEstMS-realPlans[0].TotalEstMS) > realPlans[0].TotalEstMS*0.25 {
		t.Fatalf("virtual estimate drifted: %g vs %g", plans[0].TotalEstMS, realPlans[0].TotalEstMS)
	}
}

func TestEnumerateByMaskingCoversCombinations(t *testing.T) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{Clock: sc.Clock, MW: sc.MW}, sc.II)
	sf, err := qcc.NewSimulatedFederation(sc.Servers, sc.Topo, sc.Catalog, sc.IINode, q)
	if err != nil {
		t.Fatal(err)
	}
	stmt := sqlparser.MustParse("SELECT o.o_id, l.l_price FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 9500")
	plans, runs, err := sf.EnumerateByMasking(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's trick: 2 servers per fragment × 2 fragments = 4 explain
	// runs, one winner each.
	if runs != 4 {
		t.Fatalf("explain runs: %d want 4", runs)
	}
	if len(plans) != 4 {
		t.Fatalf("winners: %d want 4", len(plans))
	}
	sets := map[string]bool{}
	for _, p := range plans {
		sets[p.ServerSetKey()] = true
		if !strings.Contains(p.RouteKey(), "QF1@") {
			t.Fatalf("route key: %s", p.RouteKey())
		}
	}
	if len(sets) != 4 {
		t.Fatalf("server sets: %v", sets)
	}
	// Masks must be restored.
	for _, id := range sf.MW.Servers() {
		if sf.MW.Masked(id) {
			t.Fatalf("mask leaked on %s", id)
		}
	}
}

func TestIIWorkloadFactorFromCrossSourceMerges(t *testing.T) {
	sc, err := scenario.BuildReplicaPair(scenario.ReplicaOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{Clock: sc.Clock, MW: sc.MW, DisableDaemons: true}, sc.II)
	// Load the II node itself: its merge work inflates beyond the estimate.
	sc.IINode.SetLoadLevel(1)
	const xq = "SELECT COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 2000"
	for i := 0; i < 3; i++ {
		if _, err := sc.II.Query(xq); err != nil {
			t.Fatal(err)
		}
	}
	q.PublishNow()
	if f := q.Calib.IIFactor(); f <= 1.05 {
		t.Fatalf("II workload factor must rise under integrator load: %g", f)
	}
	// The factor scales merge estimates in future compilations.
	if got := q.CalibrateII(10); got <= 10 {
		t.Fatalf("CalibrateII: %g", got)
	}
}

func TestFixedCycleNeverAdapts(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{
		Clock: sc.Clock,
		MW:    sc.MW,
		Cycle: qcc.CycleConfig{Initial: 100, Dynamic: false},
	}, sc.II)
	sc.Clock.Advance(1500)
	for _, iv := range q.Cycle.Intervals() {
		if iv != 100 {
			t.Fatalf("fixed cycle drifted: %v", q.Cycle.Intervals())
		}
	}
	if len(q.Cycle.Intervals()) < 10 {
		t.Fatalf("publishes: %d", len(q.Cycle.Intervals()))
	}
}

// TestFlappingNetworkAdaptation drives a time-varying congestion schedule on
// the preferred server's link with QCC's daemons live: probes feed the
// probe-derived factor, the dynamic cycle publishes, and routing follows the
// network weather in both directions.
func TestFlappingNetworkAdaptation(t *testing.T) {
	sc, err := scenario.BuildThreeServer(scenario.Options{Scale: 200})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{
		Clock:        sc.Clock,
		MW:           sc.MW,
		Availability: qcc.AvailabilityConfig{ProbeInterval: 50},
		Cycle:        qcc.CycleConfig{Initial: 100, Min: 25, Dynamic: true},
	}, sc.II)
	_ = q
	res, err := sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	preferred := res.Plan.Fragments[0].ServerID

	// Congestion rises at t+100ms and clears at t+2000ms.
	network.ScheduleCongestion(sc.Clock, sc.Topo.Link(preferred), []network.CongestionPhase{
		{AfterMS: 100, Level: 20},
		{AfterMS: 2000, Level: 1},
	})
	// Let probes observe the congested link.
	sc.Clock.Advance(600)
	res, err = sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Fragments[0].ServerID == preferred {
		t.Fatalf("should route around the congested link (factor %.2f)",
			q.Calib.ServerFactor(preferred))
	}
	// After the congestion clears and probes re-observe, the preferred
	// server becomes attractive again.
	sc.Clock.Advance(2500)
	res, err = sc.II.Query(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Fragments[0].ServerID != preferred {
		t.Fatalf("should return to %s after congestion clears (factor %.2f)",
			preferred, q.Calib.ServerFactor(preferred))
	}
}

func TestSimulatedFederationRefreshTracksMutations(t *testing.T) {
	sc, q := build(t)
	sf, err := qcc.NewSimulatedFederation(sc.Servers, sc.Topo, sc.Catalog, sc.IINode, q)
	if err != nil {
		t.Fatal(err)
	}
	before := sf.Servers["S1"].Table("orders").Stats().Column("o_amount").Max
	// Drift the real statistics well past the old max.
	tab := sc.Servers["S1"].Table("orders")
	if err := tab.UpdateAt(0, 2, maxAmount()); err != nil {
		t.Fatal(err)
	}
	// Virtual stats are a snapshot until refreshed.
	if got := sf.Servers["S1"].Table("orders").Stats().Column("o_amount").Max; got.Float() != before.Float() {
		t.Fatal("virtual stats must be a snapshot")
	}
	if err := sf.Refresh(sc.Servers); err != nil {
		t.Fatal(err)
	}
	if got := sf.Servers["S1"].Table("orders").Stats().Column("o_amount").Max; got.Float() != 999999 {
		t.Fatalf("refresh must pick up drift: %v", got)
	}
	// Periodic refresh on the clock.
	if err := tab.UpdateAt(1, 2, remoteFloat(1e7)); err != nil {
		t.Fatal(err)
	}
	cancel := sf.RefreshEvery(sc.Clock, 100, sc.Servers)
	sc.Clock.Advance(150)
	cancel()
	if got := sf.Servers["S1"].Table("orders").Stats().Column("o_amount").Max; got.Float() != 1e7 {
		t.Fatalf("periodic refresh: %v", got)
	}
}

func maxAmount() sqltypes.Value            { return remoteFloat(999999) }
func remoteFloat(f float64) sqltypes.Value { return sqltypes.NewFloat(f) }

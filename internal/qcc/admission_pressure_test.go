package qcc

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// TestQueuePressureInflatesIIFactor checks the admission feedback loop at the
// factor level: queued demand must raise the effective II workload factor —
// and therefore CalibrateII's output — BEFORE any execution-side observation
// moves the published factor itself.
func TestQueuePressureInflatesIIFactor(t *testing.T) {
	clk := simclock.New()
	q := New(Config{Clock: clk, DisableDaemons: true})
	depth := 0
	q.SetDemandSource(func() int { return depth })

	base := q.Calib.IIFactor()
	if got := q.EffectiveIIFactor(); got != base {
		t.Fatalf("effective factor with empty queue = %v, want published %v", got, base)
	}
	calm := q.CalibrateII(100)

	depth = 4
	inflated := q.EffectiveIIFactor()
	want := base * (1 + DefaultQueuePressureGain*4)
	if inflated != want {
		t.Fatalf("effective factor at depth 4 = %v, want %v", inflated, want)
	}
	if q.Calib.IIFactor() != base {
		t.Fatal("queue pressure must not touch the published factor itself")
	}
	if got := q.CalibrateII(100); got <= calm {
		t.Fatalf("CalibrateII under backlog = %v, must exceed uncontended %v", got, calm)
	}

	depth = 8
	deeper := q.EffectiveIIFactor()
	if deeper <= inflated {
		t.Fatalf("factor must rise with queue depth: depth 8 → %v, depth 4 → %v", deeper, inflated)
	}
}

// TestQueuePressureGainDisabled checks the escape hatch: a negative gain
// switches the feedback off entirely.
func TestQueuePressureGainDisabled(t *testing.T) {
	clk := simclock.New()
	q := New(Config{Clock: clk, DisableDaemons: true, QueuePressureGain: -1})
	q.SetDemandSource(func() int { return 100 })
	if got, want := q.EffectiveIIFactor(), q.Calib.IIFactor(); got != want {
		t.Fatalf("disabled feedback: effective %v != published %v", got, want)
	}
}

// TestQueuePressureTimelineSample checks the telemetry contract: every
// publish appends an "II" effective-factor sample to the calibration
// timeline and refreshes the qcc.ii_effective_factor gauge.
func TestQueuePressureTimelineSample(t *testing.T) {
	clk := simclock.New()
	tel := telemetry.New(telemetry.Config{Enabled: true})
	q := New(Config{Clock: clk, DisableDaemons: true, Telemetry: tel})
	depth := 3
	q.SetDemandSource(func() int { return depth })

	clk.Advance(10)
	q.PublishNow()

	samples := tel.Timelines().ServerSamples("II")
	if len(samples) == 0 {
		t.Fatal("publish must append an II effective-factor timeline sample")
	}
	want := q.Calib.IIFactor() * (1 + DefaultQueuePressureGain*3)
	if got := samples[len(samples)-1].Factor; got != want {
		t.Fatalf("II timeline sample = %v, want %v", got, want)
	}
	if v, ok := tel.Metrics().GaugeValue("qcc.ii_effective_factor", ""); !ok || v != want {
		t.Fatalf("qcc.ii_effective_factor gauge = %v (ok=%v), want %v", v, ok, want)
	}
	published, ok := tel.Metrics().GaugeValue("qcc.ii_factor", "")
	if !ok {
		t.Fatal("qcc.ii_factor gauge missing")
	}
	if want <= published {
		t.Fatalf("effective factor %v must exceed published %v while the queue is backed up", want, published)
	}
}

package qcc

import (
	"repro/internal/metawrapper"
	"repro/internal/router"
)

// RouterSignals exposes QCC's learned state as the signal bundle a
// router.WeightedRouter scores replicas from: calibration and first-row
// factors (cpu/load), reliability and fence state plus admission queue depth
// (memory/pressure), and the meta-wrapper's buffer-pool residency estimates
// (cache locality). The returned funcs read live state — the router always
// scores current factors, never a snapshot.
func (q *QCC) RouterSignals() router.Signals {
	return router.Signals{
		FragmentFactor: func(serverID, sig string) float64 {
			return q.Calib.FragmentFactor(metawrapper.FragmentKey{ServerID: serverID, Signature: sig})
		},
		FirstRowFactor: func(serverID string) (float64, bool) {
			return q.Calib.FirstRowFactor(serverID)
		},
		Reliability: func(serverID string) float64 {
			return q.Rel.Factor(serverID)
		},
		IsFenced: func(serverID string) bool {
			return q.Avail.IsDown(serverID)
		},
		QueueDepth: func() int {
			q.demandMu.RLock()
			src := q.demand
			q.demandMu.RUnlock()
			if src == nil {
				return 0
			}
			return src()
		},
		CacheResidency: func(serverID string, tables []string) float64 {
			return q.mw.CacheResidency(serverID, tables)
		},
	}
}

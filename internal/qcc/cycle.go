package qcc

import (
	"sync"

	"repro/internal/simclock"
)

// CycleConfig tunes the recalibration cycle controller (§3.4: "dynamic
// nature of the network and processing latencies at each remote server can
// vary dramatically. Thus, the frequency of re-calibration does have impact
// to effectiveness of QCC").
type CycleConfig struct {
	// Initial is the starting publish interval in simulated ms (default 500).
	Initial simclock.Time
	// Min and Max bound the interval (defaults 100 and 5000).
	Min, Max simclock.Time
	// SpeedUpDrift: when the max factor drift at a publish exceeds this,
	// the interval halves (default 0.15).
	SpeedUpDrift float64
	// SlowDownDrift: when drift stays below this, the interval grows by
	// 1.5× (default 0.03).
	SlowDownDrift float64
	// Dynamic enables adaptation; when false the interval stays at Initial
	// (the fixed-cycle ablation).
	Dynamic bool
}

func (c *CycleConfig) fill() {
	if c.Initial <= 0 {
		c.Initial = 500
	}
	if c.Min <= 0 {
		c.Min = 100
	}
	if c.Max <= 0 {
		c.Max = 5000
	}
	if c.SpeedUpDrift == 0 {
		c.SpeedUpDrift = 0.15
	}
	if c.SlowDownDrift == 0 {
		c.SlowDownDrift = 0.03
	}
}

// CycleController periodically publishes calibration factors and adapts its
// own cadence to the observed factor drift.
type CycleController struct {
	mu       sync.Mutex
	cfg      CycleConfig
	interval simclock.Time
	calib    *Calibration
	history  []simclock.Time // intervals used, for reports/ablation
}

// NewCycleController builds a controller over the calibration store.
func NewCycleController(cfg CycleConfig, calib *Calibration) *CycleController {
	cfg.fill()
	return &CycleController{cfg: cfg, interval: cfg.Initial, calib: calib}
}

// Interval returns the current publish interval.
func (cc *CycleController) Interval() simclock.Time {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.interval
}

// Intervals returns the interval history (one entry per publish).
func (cc *CycleController) Intervals() []simclock.Time {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]simclock.Time(nil), cc.history...)
}

// Start schedules the publish loop on the clock; returns a cancel function.
func (cc *CycleController) Start(clock *simclock.Clock) simclock.Cancel {
	return clock.Every(cc.Interval(), func(now simclock.Time) simclock.Time {
		drift := cc.calib.Publish(now)
		cc.mu.Lock()
		defer cc.mu.Unlock()
		cc.history = append(cc.history, cc.interval)
		if !cc.cfg.Dynamic {
			return cc.interval
		}
		switch {
		case drift > cc.cfg.SpeedUpDrift:
			cc.interval /= 2
			if cc.interval < cc.cfg.Min {
				cc.interval = cc.cfg.Min
			}
		case drift < cc.cfg.SlowDownDrift:
			cc.interval = cc.interval * 3 / 2
			if cc.interval > cc.cfg.Max {
				cc.interval = cc.cfg.Max
			}
		}
		return cc.interval
	})
}

package qcc_test

import (
	"strings"
	"testing"

	"repro/internal/qcc"
	"repro/internal/scenario"
	"repro/internal/storage"
)

// buildSkewed builds a federation where "lineitem" lives ONLY on S3: when S3 is
// persistently loaded, the advisor should recommend replicating parts to a
// cool server.
func buildSkewed(t *testing.T) (*scenario.Scenario, *qcc.QCC) {
	t.Helper()
	sc, err := scenario.BuildThreeServer(scenario.Options{
		Scale:     100,
		Exclusive: map[string]string{"lineitem": "S3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := qcc.Attach(qcc.Config{Clock: sc.Clock, MW: sc.MW, DisableDaemons: true}, sc.II)
	return sc, q
}

const skewQuery = "SELECT COUNT(*), SUM(l.l_price) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 1000"

func TestAdvisorRecommendsReplicationOffHotServer(t *testing.T) {
	sc, q := buildSkewed(t)
	sc.Servers["S3"].SetLoadLevel(1)
	for i := 0; i < 5; i++ {
		if _, err := sc.II.Query(skewQuery); err != nil {
			t.Fatal(err)
		}
	}
	q.PublishNow()
	recs := q.AdvisePlacement(sc.Catalog, sc.II.ExplainTable().Entries(), qcc.AdvisorConfig{MinFactor: 1.3})
	if len(recs) == 0 {
		t.Fatalf("expected a recommendation; S3 factor=%.2f", q.Calib.ServerFactor("S3"))
	}
	rec := recs[0]
	if rec.Nickname != "lineitem" || rec.From != "S3" {
		t.Fatalf("recommendation: %+v", rec)
	}
	if rec.To != "S1" && rec.To != "S2" {
		t.Fatalf("target: %+v", rec)
	}
	if !strings.Contains(rec.Reason, "lineitem") {
		t.Fatalf("reason: %s", rec.Reason)
	}

	// Apply the recommendation: the optimizer gains an equivalent data
	// source for the previously-exclusive nickname.
	before, err := sc.II.Query(skewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.ReplicateTable(sc, rec.Nickname, rec.From, rec.To); err != nil {
		t.Fatal(err)
	}
	stmt := before.Plan.Decomp.Fragments[0].Stmt
	plans, err := sc.II.Optimizer().Enumerate(stmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawReplica := false
	for _, p := range plans {
		for _, s := range p.ServerSet() {
			if s == rec.To {
				sawReplica = true
			}
		}
	}
	if !sawReplica {
		t.Fatalf("replica %s must appear as an alternative source", rec.To)
	}
	// The decisive benefit: the workload survives the hot server going
	// down — impossible before replication.
	sc.Servers[rec.From].SetDown(true)
	q.ProbeNow()
	after, err := sc.II.Query(skewQuery)
	if err != nil {
		t.Fatalf("replica must carry the workload after %s dies: %v", rec.From, err)
	}
	if after.Plan.Fragments[0].ServerID == rec.From {
		t.Fatal("down server still routed to")
	}
	if before.Rel.Rows[0][0].Int() != after.Rel.Rows[0][0].Int() {
		t.Fatal("replica answers differ")
	}
}

func TestAdvisorQuietWhenNoHotServer(t *testing.T) {
	sc, q := buildSkewed(t)
	for i := 0; i < 3; i++ {
		if _, err := sc.II.Query(skewQuery); err != nil {
			t.Fatal(err)
		}
	}
	q.PublishNow()
	recs := q.AdvisePlacement(sc.Catalog, sc.II.ExplainTable().Entries(), qcc.AdvisorConfig{})
	if len(recs) != 0 {
		t.Fatalf("calm system should produce no recommendations: %+v", recs)
	}
}

func TestAdvisorQuietWhenCoolReplicaExists(t *testing.T) {
	sc, q := build(t) // fully-replicated scenario
	sc.Servers["S3"].SetLoadLevel(1)
	for i := 0; i < 5; i++ {
		if _, err := sc.II.Query(scanQuery); err != nil {
			t.Fatal(err)
		}
	}
	q.PublishNow()
	recs := q.AdvisePlacement(sc.Catalog, sc.II.ExplainTable().Entries(), qcc.AdvisorConfig{})
	for _, r := range recs {
		t.Fatalf("fully-replicated nicknames need no recommendations: %+v", r)
	}
}

func TestAdvisorEmptyHistory(t *testing.T) {
	sc, q := buildSkewed(t)
	if recs := q.AdvisePlacement(sc.Catalog, nil, qcc.AdvisorConfig{}); recs != nil {
		t.Fatalf("no history: %+v", recs)
	}
}

func TestReplicateTableValidation(t *testing.T) {
	sc, _ := buildSkewed(t)
	if err := scenario.ReplicateTable(sc, "ghost", "S3", "S1"); err == nil {
		t.Fatal("unknown nickname")
	}
	if err := scenario.ReplicateTable(sc, "lineitem", "S1", "S2"); err == nil {
		t.Fatal("source does not host")
	}
	if err := scenario.ReplicateTable(sc, "lineitem", "S3", "S9"); err == nil {
		t.Fatal("unknown target")
	}
	if err := scenario.ReplicateTable(sc, "orders", "S1", "S2"); err == nil {
		t.Fatal("target already hosts orders")
	}
	// A valid replication copies rows and indexes.
	if err := scenario.ReplicateTable(sc, "lineitem", "S3", "S1"); err != nil {
		t.Fatal(err)
	}
	src := sc.Servers["S3"].Table("lineitem")
	dst := sc.Servers["S1"].Table("lineitem")
	if dst == nil || dst.RowCount() != src.RowCount() {
		t.Fatal("rows not copied")
	}
	if len(dst.IndexMetas()) != len(src.IndexMetas()) {
		t.Fatal("indexes not copied")
	}
	_ = storage.PageSize
}

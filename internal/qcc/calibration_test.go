package qcc

import (
	"testing"
	"testing/quick"

	"repro/internal/metawrapper"
)

func key(server, sig string) metawrapper.FragmentKey {
	return metawrapper.FragmentKey{ServerID: server, Signature: sig}
}

func TestHistoryFactorRatioOfAverages(t *testing.T) {
	h := newHistory(10, 0)
	h.add(0, 5, 8)
	h.add(1, 5, 7)
	f, n := h.factor(2)
	if n != 2 {
		t.Fatalf("samples: %d", n)
	}
	want := 15.0 / 10.0
	if f != want {
		t.Fatalf("factor %g want %g", f, want)
	}
}

func TestHistoryWindowAndAge(t *testing.T) {
	h := newHistory(3, 100)
	for i := 0; i < 5; i++ {
		h.add(0, 1, 2)
	}
	if len(h.samples) != 3 {
		t.Fatalf("window: %d", len(h.samples))
	}
	_, n := h.factor(200)
	if n != 0 {
		t.Fatalf("aged samples must expire: %d", n)
	}
	f, _ := h.factor(200)
	if f != 1 {
		t.Fatalf("empty factor must be 1: %g", f)
	}
}

func TestHistoryIgnoresZeroEstimates(t *testing.T) {
	h := newHistory(10, 0)
	h.add(0, 0, 99)
	h.add(0, 2, 4)
	f, n := h.factor(1)
	if n != 1 || f != 2 {
		t.Fatalf("factor %g n=%d", f, n)
	}
}

func TestCalibrationFactorsAndPublish(t *testing.T) {
	c := NewCalibration(CalibrationConfig{PerFragment: true})
	k1 := key("S1", "Q1")
	c.RecordRun(0, k1, 10, 16) // factor 1.6, like the paper's S1 example
	// Factors are invisible until published.
	if f := c.FragmentFactor(k1); f != 1 {
		t.Fatalf("pre-publish factor must be 1: %g", f)
	}
	c.Publish(1)
	if f := c.FragmentFactor(k1); f != 1.6 {
		t.Fatalf("fragment factor: %g", f)
	}
	if f := c.ServerFactor("S1"); f != 1.6 {
		t.Fatalf("server factor: %g", f)
	}
	// A different fragment on the same server falls back to the server
	// factor — the Figure 5 mechanism (QF3 calibrated by S2's factor).
	if f := c.FragmentFactor(key("S1", "Q9")); f != 1.6 {
		t.Fatalf("fallback to server factor: %g", f)
	}
	// An unknown server is neutral.
	if f := c.FragmentFactor(key("S9", "Q1")); f != 1 {
		t.Fatalf("unknown server: %g", f)
	}
}

func TestCalibrationPerFragmentDisabled(t *testing.T) {
	c := NewCalibration(CalibrationConfig{PerFragment: false})
	k1, k2 := key("S1", "Q1"), key("S1", "Q2")
	c.RecordRun(0, k1, 10, 30) // 3.0
	c.RecordRun(0, k2, 10, 10) // 1.0
	c.Publish(1)
	// Both collapse to the server-level blend (40/20 = 2).
	if f := c.FragmentFactor(k1); f != 2 {
		t.Fatalf("server-only factor: %g", f)
	}
	if f := c.FragmentFactor(k2); f != 2 {
		t.Fatalf("server-only factor: %g", f)
	}
}

func TestCalibrationDriftSignal(t *testing.T) {
	c := NewCalibration(CalibrationConfig{})
	k := key("S1", "Q1")
	c.RecordRun(0, k, 10, 10)
	if drift := c.Publish(1); drift != 0 {
		t.Fatalf("first publish drift: %g", drift)
	}
	c.RecordRun(2, k, 10, 40)
	drift := c.Publish(3)
	if drift < 0.5 {
		t.Fatalf("load spike must register as drift: %g", drift)
	}
}

func TestCalibrationProbeFallback(t *testing.T) {
	c := NewCalibration(CalibrationConfig{})
	c.RecordProbe("S1", 10) // baseline
	c.RecordProbe("S1", 30) // loaded
	c.Publish(1)
	if f := c.ServerFactor("S1"); f != 3 {
		t.Fatalf("probe factor: %g", f)
	}
	// Probe factor never dips below 1.
	c.RecordProbe("S1", 5)
	c.Publish(2)
	if f := c.ServerFactor("S1"); f != 1 {
		t.Fatalf("clamped probe factor: %g", f)
	}
}

func TestCalibrationIIFactor(t *testing.T) {
	c := NewCalibration(CalibrationConfig{})
	if c.IIFactor() != 1 {
		t.Fatal("default II factor")
	}
	c.RecordII(0, 10, 25)
	c.Publish(1)
	if f := c.IIFactor(); f != 2.5 {
		t.Fatalf("II factor: %g", f)
	}
}

func TestCalibrationSeedEstimate(t *testing.T) {
	c := NewCalibration(CalibrationConfig{})
	k := key("F1", "QF")
	if s := c.SeedEstimate(0, k, 20); s != 0 {
		t.Fatalf("no seed yet: %g", s)
	}
	c.RecordProbe("F1", 5)
	if s := c.SeedEstimate(0, k, 20); s != 100 {
		t.Fatalf("probe seed: %g", s)
	}
	// Observed runs (est=0) override the probe seed.
	c.RecordRun(0, k, 0, 42)
	c.RecordRun(0, k, 0, 44)
	if s := c.SeedEstimate(1, k, 20); s != 43 {
		t.Fatalf("observed seed: %g", s)
	}
}

func TestCalibrationKnownServers(t *testing.T) {
	c := NewCalibration(CalibrationConfig{})
	c.RecordRun(0, key("S2", "Q"), 1, 1)
	c.RecordProbe("S1", 4)
	c.Publish(1)
	got := c.KnownServers()
	if len(got) != 2 || got[0] != "S1" || got[1] != "S2" {
		t.Fatalf("known servers: %v", got)
	}
	if c.Publishes() != 1 {
		t.Fatalf("publishes: %d", c.Publishes())
	}
}

func TestFactorPositiveProperty(t *testing.T) {
	c := NewCalibration(CalibrationConfig{})
	f := func(est, obs uint16) bool {
		k := key("S1", "Q")
		c.RecordRun(0, k, float64(est)+1, float64(obs))
		c.Publish(0)
		return c.FragmentFactor(k) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

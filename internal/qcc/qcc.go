package qcc

import (
	"context"
	"math"
	"sync"

	"repro/internal/integrator"
	"repro/internal/metawrapper"
	"repro/internal/optimizer"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Config wires a QCC instance.
type Config struct {
	// Clock is the shared virtual clock.
	Clock *simclock.Clock
	// MW is the production meta-wrapper QCC instruments.
	MW *metawrapper.MetaWrapper
	// Enumerate produces executable global plans for load distribution;
	// usually II.Optimizer().Enumerate. Nil disables load balancing.
	Enumerate EnumerateFunc

	Calibration  CalibrationConfig
	Reliability  ReliabilityConfig
	Availability AvailabilityConfig
	Cycle        CycleConfig
	LB           LBConfig
	Reroute      RerouteConfig

	// FileSeedMultiplier scales a probe round-trip into the initial cost
	// seed for no-estimate (file) sources (default 20).
	FileSeedMultiplier float64
	// QueuePressureGain scales admission queue depth into the II workload
	// factor: effective factor = published factor × (1 + gain × depth).
	// Queued demand is load the workload factor cannot see yet — those
	// queries have not executed — so folding it in lets routing react to
	// pressure BEFORE execution saturates. 0 selects
	// DefaultQueuePressureGain; negative disables the feedback.
	QueuePressureGain float64
	// Telemetry, when non-nil and enabled, receives calibration timelines,
	// per-server factor gauges and fence/rotation/reroute counters.
	Telemetry *telemetry.Telemetry
	// DisableDaemons skips scheduling the availability and recalibration
	// daemons; tests and harnesses then drive PublishNow/ProbeNow manually.
	DisableDaemons bool
}

// CostPolicy lets deployments fold business logic into the calibrated cost
// of a (server, fragment) pair — §3.5: the transparent design allows
// "customizing cost functions for different business applications that may
// demand incorporation of unique business logic, such as QoS goal and
// reliability, outside of DB2 and II". The policy runs LAST, after load,
// network, reliability and availability calibration; returning +Inf bans
// the server for the fragment.
type CostPolicy func(serverID string, est remote.CostEstimate) remote.CostEstimate

// QCC is the Query Cost Calibrator. It implements metawrapper.Observer,
// metawrapper.Calibrator, optimizer.IICalibrator, integrator.RoutePolicy
// (via its LoadBalancer) and integrator.IIMergeObserver.
type QCC struct {
	clock *simclock.Clock
	mw    *metawrapper.MetaWrapper

	Calib *Calibration
	Rel   *Reliability
	Avail *Availability
	Cycle *CycleController
	LB    *LoadBalancer
	// Rerouter is non-nil when runtime fragment rerouting is enabled.
	Rerouter *Rerouter

	fileSeedMultiplier float64
	queuePressureGain  float64
	tel                *telemetry.Telemetry

	policyMu sync.RWMutex
	policy   CostPolicy

	demandMu sync.RWMutex
	demand   DemandSource

	mu       sync.Mutex
	cancels  []simclock.Cancel
	compiles int64
	runs     int64
	errors   int64
}

// DefaultQueuePressureGain is the per-queued-query multiplier applied to the
// II workload factor when no explicit gain is configured: each waiting query
// inflates II-side cost estimates by 25%, biasing routing and what-if
// analysis away from plans that lean on the saturated integrator.
const DefaultQueuePressureGain = 0.25

// DemandSource reports pending admission demand (queued queries not yet
// executing); the admission controller's QueueDepth is the canonical one.
type DemandSource func() int

// New builds a QCC over the given config (does not attach it yet).
func New(cfg Config) *QCC {
	if cfg.FileSeedMultiplier == 0 {
		cfg.FileSeedMultiplier = 20
	}
	if cfg.QueuePressureGain == 0 {
		cfg.QueuePressureGain = DefaultQueuePressureGain
	} else if cfg.QueuePressureGain < 0 {
		cfg.QueuePressureGain = 0
	}
	cfg.Cycle.Dynamic = cfg.Cycle.Dynamic || cfg.Cycle.Initial == 0 // default dynamic
	calib := NewCalibration(cfg.Calibration)
	q := &QCC{
		clock:              cfg.Clock,
		mw:                 cfg.MW,
		Calib:              calib,
		Rel:                NewReliability(cfg.Reliability),
		Avail:              NewAvailability(cfg.Availability),
		Cycle:              NewCycleController(cfg.Cycle, calib),
		fileSeedMultiplier: cfg.FileSeedMultiplier,
		queuePressureGain:  cfg.QueuePressureGain,
		tel:                cfg.Telemetry,
	}
	// The publish hook feeds the calibration timeline and factor gauges on
	// every recalibration cycle. It must be installed before the daemons
	// start so no publish escapes observation.
	calib.SetPublishHook(func(at simclock.Time, serverFactors map[string]float64, iiFactor float64) {
		for id, f := range serverFactors {
			q.tel.AppendFactor(at, id, f)
		}
		// The effective II factor (published × queue pressure) gets its own
		// "II" timeline series: its divergence from the qcc.ii_factor gauge
		// is exactly the admission backlog's contribution.
		effective := iiFactor * q.queuePressure()
		q.tel.AppendFactor(at, "II", effective)
		reg := q.tel.Active()
		if reg == nil {
			return
		}
		for id, f := range serverFactors {
			reg.Gauge("qcc.calibration_factor", id).Set(f)
		}
		reg.Gauge("qcc.ii_factor", "").Set(iiFactor)
		reg.Gauge("qcc.ii_effective_factor", "").Set(effective)
		reg.Counter("qcc.publishes", "").Inc()
	})
	if cfg.Enumerate != nil {
		q.LB = NewLoadBalancer(cfg.LB, cfg.Clock, cfg.Enumerate)
		q.LB.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Reroute.Enabled {
		q.Rerouter = NewRerouter(cfg.Reroute, cfg.MW)
		q.Rerouter.SetTelemetry(cfg.Telemetry)
	}
	if !cfg.DisableDaemons {
		q.mu.Lock()
		q.cancels = append(q.cancels,
			q.Avail.StartDaemon(cfg.Clock, cfg.MW),
			q.Cycle.Start(cfg.Clock),
		)
		q.mu.Unlock()
	}
	return q
}

// Attach installs QCC into a federation: the meta-wrapper reports to and
// calibrates through it, and the integrator consults it for II calibration,
// merge observation and routing. This is the paper's transparent deployment:
// no optimizer code changes, only the cost surfaces.
func Attach(cfg Config, ii *integrator.II) *QCC {
	if cfg.Enumerate == nil && ii != nil {
		cfg.Enumerate = ii.Optimizer().Enumerate
	}
	q := New(cfg)
	cfg.MW.SetObserver(q)
	cfg.MW.SetCalibrator(q)
	if ii != nil {
		ii.SetIICalibrator(q)
		ii.SetMergeObserver(q)
		if q.LB != nil {
			ii.SetRoute(q.LB)
		}
		if q.Rerouter != nil {
			ii.SetRerouter(q.Rerouter)
		}
	}
	return q
}

// Detach removes QCC from the meta-wrapper and stops its daemons. The
// integrator hooks are left for the caller to clear (they are harmless
// identity operations once the calibration store stops updating).
func (q *QCC) Detach() {
	q.mw.SetObserver(nil)
	q.mw.SetCalibrator(nil)
	q.Stop()
}

// Stop cancels the daemons.
func (q *QCC) Stop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, c := range q.cancels {
		c()
	}
	q.cancels = nil
}

// PlanRefreshInterval returns the rotation refresh interval the federated
// plan cache should align its staleness bound with. When load balancing is
// attached this is the balancer's resolved interval; otherwise it is the
// same default an attached balancer would have resolved to.
func (q *QCC) PlanRefreshInterval() simclock.Time {
	if q.LB != nil {
		return q.LB.RefreshInterval()
	}
	var cfg LBConfig
	cfg.fill()
	return cfg.RefreshInterval
}

// SetCostPolicy installs (or clears, with nil) the business-logic cost
// policy.
func (q *QCC) SetCostPolicy(p CostPolicy) {
	q.policyMu.Lock()
	defer q.policyMu.Unlock()
	q.policy = p
}

func (q *QCC) costPolicy() CostPolicy {
	q.policyMu.RLock()
	defer q.policyMu.RUnlock()
	return q.policy
}

// PublishNow forces a recalibration cycle immediately (harness hook).
func (q *QCC) PublishNow() { q.Calib.Publish(q.clock.Now()) }

// ProbeNow runs one availability-daemon sweep immediately (harness hook).
func (q *QCC) ProbeNow() {
	for _, id := range q.mw.Servers() {
		q.mw.Probe(context.Background(), id) //nolint:errcheck // outcome flows through the observer
	}
}

// Stats is a consistent snapshot of QCC's interaction counters.
type Stats struct {
	// Compiles counts compile records observed.
	Compiles int64
	// Runs counts fragment runs observed.
	Runs int64
	// Errors counts fragment errors observed.
	Errors int64
}

// StatsSnapshot returns a consistent snapshot of QCC's interaction counters:
// compiles seen, runs observed, errors recorded.
func (q *QCC) StatsSnapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{Compiles: q.compiles, Runs: q.runs, Errors: q.errors}
}

// Stats reports QCC's interaction counters.
//
// Deprecated: use StatsSnapshot, which returns a named struct instead of
// positional values.
func (q *QCC) Stats() (compiles, runs, errors int64) {
	s := q.StatsSnapshot()
	return s.Compiles, s.Runs, s.Errors
}

// ---- metawrapper.Observer ----

// ObserveCompile implements metawrapper.Observer.
func (q *QCC) ObserveCompile(rec metawrapper.CompileRecord) {
	q.mu.Lock()
	q.compiles++
	q.mu.Unlock()
	q.tel.Active().Counter("qcc.compiles", "").Inc()
}

// ObserveRun implements metawrapper.Observer: the runtime response time is
// recorded against the compile-time estimate, success refreshes reliability
// and availability.
func (q *QCC) ObserveRun(rec metawrapper.RunRecord) {
	q.mu.Lock()
	q.runs++
	q.mu.Unlock()
	q.Calib.RecordRun(q.clock.Now(), rec.Key, rec.Est.TotalMS, float64(rec.Observed))
	if rec.FirstRow > 0 {
		// Streaming run: the first batch's arrival was observed separately,
		// so the first-tuple estimate calibrates on its own history.
		q.Calib.RecordFirstRow(q.clock.Now(), rec.Key.ServerID, rec.Est.FirstTupleMS, float64(rec.FirstRow))
	}
	q.Rel.RecordSuccess(rec.Key.ServerID)
	if q.Avail.MarkUp(rec.Key.ServerID) {
		q.tel.Active().Counter("qcc.unfences", rec.Key.ServerID).Inc()
	}
	q.noteServerHealth(rec.Key.ServerID)
	q.tel.Active().Counter("qcc.runs", "").Inc()
}

// ObserveError implements metawrapper.Observer.
func (q *QCC) ObserveError(serverID string, err error) {
	q.mu.Lock()
	q.errors++
	q.mu.Unlock()
	q.Rel.RecordFailure(serverID)
	if IsDownError(err) && q.Avail.MarkDown(serverID) {
		q.tel.Active().Counter("qcc.fences", serverID).Inc()
	}
	q.noteServerHealth(serverID)
	q.tel.Active().Counter("qcc.errors", "").Inc()
}

// ObserveProbe implements metawrapper.Observer.
func (q *QCC) ObserveProbe(serverID string, rtt simclock.Time, err error) {
	if err != nil {
		q.Rel.RecordFailure(serverID)
		if IsDownError(err) && q.Avail.MarkDown(serverID) {
			q.tel.Active().Counter("qcc.fences", serverID).Inc()
		}
		q.noteServerHealth(serverID)
		return
	}
	if q.Avail.MarkUp(serverID) {
		q.tel.Active().Counter("qcc.unfences", serverID).Inc()
	}
	q.Rel.RecordSuccess(serverID)
	q.Calib.RecordProbe(serverID, float64(rtt))
	q.noteServerHealth(serverID)
}

// noteServerHealth refreshes the per-server reliability and fence gauges
// after any observation that may have moved them.
func (q *QCC) noteServerHealth(serverID string) {
	reg := q.tel.Active()
	if reg == nil {
		return
	}
	reg.Gauge("qcc.reliability_factor", serverID).Set(q.Rel.Factor(serverID))
	fenced := 0.0
	if q.Avail.IsDown(serverID) {
		fenced = 1
	}
	reg.Gauge("qcc.fenced", serverID).Set(fenced)
}

// ---- metawrapper.Calibrator ----

// CalibrateFragment implements metawrapper.Calibrator: the calibrated cost
// = estimated cost × fragment factor × reliability factor, +Inf for fenced
// servers, and a seeded estimate for sources that provide none.
func (q *QCC) CalibrateFragment(key metawrapper.FragmentKey, est remote.CostEstimate, costKnown bool) remote.CostEstimate {
	if q.Avail.IsDown(key.ServerID) {
		est.TotalMS = math.Inf(1)
		est.FirstTupleMS = math.Inf(1)
		return est
	}
	rel := q.Rel.Factor(key.ServerID)
	if !costKnown {
		seed := q.Calib.SeedEstimate(q.clock.Now(), key, q.fileSeedMultiplier)
		if seed > 0 {
			est.TotalMS = seed * rel
			est.FirstTupleMS = seed * rel * 0.1
			if est.Card == 0 {
				est.Card = 1
			}
		}
		return q.applyPolicy(key.ServerID, est)
	}
	factor := q.Calib.FragmentFactor(key) * rel
	firstFactor := factor
	if f, ok := q.Calib.FirstRowFactor(key.ServerID); ok {
		// Streaming runs observed time-to-first-row separately, so the
		// first-tuple component gets its own correction instead of
		// inheriting the total-time factor.
		firstFactor = f * rel
	}
	est.TotalMS *= factor
	est.FirstTupleMS *= firstFactor
	est.NextTupleMS *= factor
	return q.applyPolicy(key.ServerID, est)
}

func (q *QCC) applyPolicy(serverID string, est remote.CostEstimate) remote.CostEstimate {
	if p := q.costPolicy(); p != nil {
		return p(serverID, est)
	}
	return est
}

// ---- optimizer.IICalibrator / integrator.IIMergeObserver ----

// SetDemandSource installs (or clears, with nil) the pending-demand feed —
// typically the admission controller's QueueDepth. While queries wait for
// admission, the II workload factor is inflated by queuePressure so routing
// and what-if analysis see the backlog before execution does.
func (q *QCC) SetDemandSource(src DemandSource) {
	q.demandMu.Lock()
	defer q.demandMu.Unlock()
	q.demand = src
}

// queuePressure converts pending admission demand into a multiplicative
// workload inflation: 1 + gain × depth (1 when no source is installed or the
// feedback is disabled).
func (q *QCC) queuePressure() float64 {
	if q.queuePressureGain <= 0 {
		return 1
	}
	q.demandMu.RLock()
	src := q.demand
	q.demandMu.RUnlock()
	if src == nil {
		return 1
	}
	depth := src()
	if depth <= 0 {
		return 1
	}
	return 1 + q.queuePressureGain*float64(depth)
}

// EffectiveIIFactor is the II workload factor actually applied to merge
// estimates: the published §3.2 calibration factor scaled by current
// admission queue pressure. With no backlog it equals Calib.IIFactor().
func (q *QCC) EffectiveIIFactor() float64 {
	return q.Calib.IIFactor() * q.queuePressure()
}

// CalibrateII implements optimizer.IICalibrator (§3.2), folding admission
// queue pressure into the published workload factor.
func (q *QCC) CalibrateII(estMS float64) float64 {
	return estMS * q.EffectiveIIFactor()
}

// ObserveIIMerge implements integrator.IIMergeObserver.
func (q *QCC) ObserveIIMerge(estMS float64, observed simclock.Time) {
	q.Calib.RecordII(q.clock.Now(), estMS, float64(observed))
}

// Interface assertions.
var (
	_ metawrapper.Observer       = (*QCC)(nil)
	_ metawrapper.Calibrator     = (*QCC)(nil)
	_ optimizer.IICalibrator     = (*QCC)(nil)
	_ integrator.IIMergeObserver = (*QCC)(nil)
	_ integrator.RoutePolicy     = (*LoadBalancer)(nil)
	_ integrator.RuntimeRerouter = (*Rerouter)(nil)
)

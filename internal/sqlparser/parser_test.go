package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT id, name FROM orders WHERE id > 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Select) != 2 {
		t.Fatalf("select items: %d", len(stmt.Select))
	}
	if stmt.From.Name != "orders" {
		t.Fatalf("from: %v", stmt.From)
	}
	if stmt.Where == nil {
		t.Fatal("where missing")
	}
	if stmt.Limit != -1 {
		t.Fatal("limit should default to -1")
	}
}

func TestParseStar(t *testing.T) {
	stmt := MustParse("SELECT * FROM t")
	if !stmt.Select[0].Star {
		t.Fatal("star not parsed")
	}
}

func TestParseJoinWithOn(t *testing.T) {
	stmt := MustParse("SELECT a.x FROM a JOIN b ON a.id = b.id WHERE b.y < 5")
	if len(stmt.Joins) != 1 || stmt.Joins[0].Table.Name != "b" {
		t.Fatalf("joins: %+v", stmt.Joins)
	}
	on, ok := stmt.Joins[0].On.(*BinaryExpr)
	if !ok || on.Op != OpEq {
		t.Fatalf("on: %v", stmt.Joins[0].On)
	}
}

func TestParseInnerJoinKeyword(t *testing.T) {
	stmt := MustParse("SELECT a.x FROM a INNER JOIN b ON a.id = b.id")
	if len(stmt.Joins) != 1 {
		t.Fatal("inner join not parsed")
	}
}

func TestParseCommaJoin(t *testing.T) {
	stmt := MustParse("SELECT a.x FROM a, b WHERE a.id = b.id")
	if len(stmt.Joins) != 1 {
		t.Fatal("comma join not parsed")
	}
	lit, ok := stmt.Joins[0].On.(*Literal)
	if !ok || !lit.Val.Bool() {
		t.Fatal("comma join should carry ON TRUE")
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	stmt := MustParse(`SELECT dept, COUNT(*) AS n, AVG(sal) FROM emp
		WHERE sal > 100 GROUP BY dept HAVING COUNT(*) > 2
		ORDER BY dept DESC, n LIMIT 7`)
	if len(stmt.GroupBy) != 1 {
		t.Fatal("group by")
	}
	if stmt.Having == nil {
		t.Fatal("having")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order by: %+v", stmt.OrderBy)
	}
	if stmt.Limit != 7 {
		t.Fatal("limit")
	}
	if !stmt.HasAggregates() {
		t.Fatal("aggregates not detected")
	}
	if stmt.Select[1].Alias != "n" {
		t.Fatal("alias not parsed")
	}
}

func TestParseAliases(t *testing.T) {
	stmt := MustParse("SELECT o.id total FROM orders AS o")
	if stmt.From.Alias != "o" || stmt.From.EffectiveName() != "o" {
		t.Fatalf("table alias: %+v", stmt.From)
	}
	if stmt.Select[0].Alias != "total" {
		t.Fatal("implicit column alias")
	}
}

func TestParseDistinct(t *testing.T) {
	if !MustParse("SELECT DISTINCT x FROM t").Distinct {
		t.Fatal("distinct")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(1 + (2 * 3))" {
		t.Fatalf("precedence: %s", e)
	}
	e, _ = ParseExpr("a = 1 OR b = 2 AND c = 3")
	if e.String() != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Fatalf("bool precedence: %s", e)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	e, err := ParseExpr("-x + 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "(0 - x)") {
		t.Fatalf("unary minus: %s", e)
	}
}

func TestParseInBetweenLikeIsNull(t *testing.T) {
	cases := []string{
		"(x IN (1, 2, 3))",
		"(x NOT IN (1))",
		"(x BETWEEN 1 AND 5)",
		"(x NOT BETWEEN 1 AND 5)",
		"(name LIKE 'a%')",
		"(name NOT LIKE '%z')",
		"(x IS NULL)",
		"(x IS NOT NULL)",
	}
	for _, want := range cases {
		e, err := ParseExpr(want)
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if e.String() != want {
			t.Errorf("round-trip %q -> %q", want, e.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t trailing garbage (",
		"SELECT * FROM t WHERE x NOT 5",
		"SELECT * FROM t WHERE 'unterminated",
		"SELECT * FROM t WHERE x = 1.",
		"SELECT * FROM t WHERE x ? 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStatementRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a, b AS c FROM t AS x JOIN u ON (x.id = u.id) WHERE (a > 5) GROUP BY a HAVING (COUNT(*) > 1) ORDER BY a ASC LIMIT 3",
		"SELECT SUM(x.v) FROM big AS x JOIN small AS y ON (x.k = y.k) WHERE (y.p > 100)",
	}
	for _, src := range srcs {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt.String(), err)
		}
		if again.String() != stmt.String() {
			t.Errorf("not a fixpoint: %q vs %q", stmt.String(), again.String())
		}
	}
}

func TestTablesEnumeration(t *testing.T) {
	stmt := MustParse("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
	tabs := stmt.Tables()
	if len(tabs) != 3 || tabs[0].Name != "a" || tabs[2].Name != "c" {
		t.Fatalf("tables: %+v", tabs)
	}
}

func TestSplitAndJoinConjuncts(t *testing.T) {
	e, _ := ParseExpr("a = 1 AND b = 2 AND c = 3")
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("conjuncts: %d", len(parts))
	}
	re := JoinConjuncts(parts)
	if re.String() != e.String() {
		t.Fatalf("rebuild: %s vs %s", re, e)
	}
	if JoinConjuncts(nil) != nil {
		t.Fatal("empty join should be nil")
	}
	if got := SplitConjuncts(nil); got != nil {
		t.Fatal("nil split should be nil")
	}
}

func TestCollectColumnRefs(t *testing.T) {
	e, _ := ParseExpr("a.x > 1 AND b.y IN (c.z, 2) AND u BETWEEN v AND w AND s LIKE 'p%' AND NOT q IS NULL AND SUM(m) > 0")
	refs := CollectColumnRefs(e, nil)
	names := map[string]bool{}
	for _, r := range refs {
		names[r.String()] = true
	}
	for _, want := range []string{"a.x", "b.y", "c.z", "u", "v", "w", "s", "q", "m"} {
		if !names[want] {
			t.Errorf("missing ref %s (got %v)", want, names)
		}
	}
}

func TestLexComments(t *testing.T) {
	stmt, err := Parse("SELECT x -- a comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From.Name != "t" {
		t.Fatal("comment handling")
	}
}

func TestLiteralKinds(t *testing.T) {
	stmt := MustParse("SELECT 1, 2.5, 'hi', TRUE, FALSE, NULL FROM t")
	kinds := []sqltypes.Kind{
		sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString,
		sqltypes.KindBool, sqltypes.KindBool, sqltypes.KindNull,
	}
	for i, want := range kinds {
		lit, ok := stmt.Select[i].Expr.(*Literal)
		if !ok || lit.Val.Kind() != want {
			t.Errorf("item %d: %v, want kind %v", i, stmt.Select[i].Expr, want)
		}
	}
}

func TestCanonicalizeSQL(t *testing.T) {
	a := CanonicalizeSQL("SELECT x FROM t WHERE y > 100 AND s = 'abc'")
	b := CanonicalizeSQL("SELECT x FROM t WHERE y > 999 AND s = 'zzz'")
	if a != b {
		t.Fatalf("instances must share canonical form: %q vs %q", a, b)
	}
	if !strings.Contains(a, "?") {
		t.Fatalf("literals must become placeholders: %q", a)
	}
	c := CanonicalizeSQL("SELECT x FROM u WHERE y > 100")
	if a == c {
		t.Fatal("different statements must differ")
	}
	// Keywords upper-case, whitespace collapses.
	if got := CanonicalizeSQL("this   is \t not sql"); got != "this IS NOT sql" {
		t.Fatalf("lexed canonical form: %q", got)
	}
	// Unlexable input falls back to whitespace collapsing.
	if got := CanonicalizeSQL("a  ??  b"); got != "a ?? b" {
		t.Fatalf("fallback: %q", got)
	}
}

func TestCanonicalizeSQLParameterVariants(t *testing.T) {
	// Every literal kind — ints, floats, strings, and negative numbers via a
	// unary minus — must collapse to the same placeholder, so parameter
	// variants share one canonical form (and thus one plan cache entry and
	// one calibration identity).
	variants := []string{
		"SELECT x FROM t WHERE y > 100",
		"SELECT x FROM t WHERE y > 2.5",
		"SELECT x FROM t WHERE y > -100",
		"SELECT x FROM t WHERE y > -2.5",
		"select x from t where y > 'k'",
	}
	want := CanonicalizeSQL(variants[0])
	for _, v := range variants[1:] {
		if got := CanonicalizeSQL(v); got != want {
			t.Errorf("%q: canonical %q, want %q", v, got, want)
		}
	}
	// A binary minus is arithmetic, not a sign: it must survive, and its own
	// parameter variants must share a form distinct from the plain
	// comparison.
	bin := CanonicalizeSQL("SELECT x FROM t WHERE y - 5 > 100")
	if !strings.Contains(bin, "-") {
		t.Fatalf("binary minus folded away: %q", bin)
	}
	if bin == want {
		t.Fatalf("subtraction and comparison must differ: %q", bin)
	}
	if b2 := CanonicalizeSQL("SELECT x FROM t WHERE y - 50 > 1"); b2 != bin {
		t.Fatalf("binary-minus variants must share form: %q vs %q", b2, bin)
	}
	// A closing paren terminates an operand, so the minus after it is binary.
	if got := CanonicalizeSQL("SELECT ( y ) - 5 FROM t"); !strings.Contains(got, "-") {
		t.Fatalf("minus after paren folded away: %q", got)
	}
	// Lex errors (unterminated string) fall back to whitespace collapsing.
	if got := CanonicalizeSQL("SELECT 'oops  FROM t"); got != "SELECT 'oops FROM t" {
		t.Fatalf("lex-error fallback: %q", got)
	}
}

// Package sqlparser implements the SQL subset spoken throughout the
// federation: a lexer, a recursive-descent parser producing an AST, and an
// expression evaluator. The subset covers SELECT with joins, WHERE, GROUP
// BY/HAVING, ORDER BY, LIMIT, aggregates and scalar expressions — enough to
// express the paper's QT1–QT4 query types and the federated workloads built
// on them.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexical token.
type token struct {
	kind tokenKind
	text string // keyword/ident text is upper-cased for keywords
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "ON": true, "ASC": true, "DESC": true,
	"DISTINCT": true, "IN": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lexer tokenizes a SQL string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes src fully, returning an error with position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.tokens = append(l.tokens, token{kind: tokIdent, text: word, pos: start})
	}
}

func (l *lexer) lexNumber(start int) error {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return fmt.Errorf("sqlparser: malformed number %q at %d", text, start)
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: start})
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string at %d", start)
}

func (l *lexer) lexSymbol(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: text, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case ',', '(', ')', '*', '+', '-', '/', '<', '>', '=', '.', '%':
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sqlparser: unexpected character %q at %d", c, start)
}

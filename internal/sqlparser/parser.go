package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqltypes"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %q", p.cur().text)
	}
	return stmt, nil
}

// MustParse parses src and panics on error; for tests and static fixtures.
func MustParse(src string) *SelectStmt {
	stmt, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return stmt
}

// ParseExpr parses a standalone expression (used for predicates in tests and
// fragment manipulation).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %q", p.cur().text)
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches kind (and text when given).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			if p.accept(tokSymbol, ",") {
				// Comma join: treat as JOIN with ON TRUE; predicates in WHERE.
				tr, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: &Literal{Val: sqltypes.NewBool(true)}})
				continue
			}
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.text
	} else if p.at(tokIdent, "") {
		tr.Alias = p.advance().text
	}
	return tr, nil
}

// Expression grammar (lowest to highest precedence):
//   expr     := orExpr
//   orExpr   := andExpr { OR andExpr }
//   andExpr  := notExpr { AND notExpr }
//   notExpr  := [NOT] predExpr
//   predExpr := addExpr [cmpOp addExpr | IS [NOT] NULL | [NOT] IN (...) |
//               [NOT] BETWEEN addExpr AND addExpr | [NOT] LIKE 'pat']
//   addExpr  := mulExpr { (+|-) mulExpr }
//   mulExpr  := unary { (*|/) unary }
//   unary    := [-] primary
//   primary  := literal | columnRef | aggCall | ( expr )

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.accept(tokKeyword, "IS") {
		negate := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Inner: left, Negate: negate}, nil
	}
	negate := false
	if p.at(tokKeyword, "NOT") {
		next := p.toks[p.i+1]
		if next.kind == tokKeyword && (next.text == "IN" || next.text == "BETWEEN" || next.text == "LIKE") {
			p.advance()
			negate = true
		}
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Needle: left, List: list, Negate: negate}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Subject: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.accept(tokKeyword, "LIKE"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Subject: left, Pattern: t.text, Negate: negate}, nil
	}
	if negate {
		return nil, p.errorf("dangling NOT")
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(tokSymbol, "+"):
			op = OpAdd
		case p.accept(tokSymbol, "-"):
			op = OpSub
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(tokSymbol, "*"):
			op = OpMul
		case p.accept(tokSymbol, "/"):
			op = OpDiv
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpSub, Left: &Literal{Val: sqltypes.NewInt(0)}, Right: inner}, nil
	}
	return p.parsePrimary()
}

// scalarFuncs lists supported scalar functions with their arity range.
var scalarFuncs = map[string][2]int{
	"ABS": {1, 1}, "ROUND": {1, 2}, "FLOOR": {1, 1}, "CEIL": {1, 1},
	"MOD": {2, 2}, "UPPER": {1, 1}, "LOWER": {1, 1}, "LENGTH": {1, 1},
	"SUBSTR": {2, 3}, "COALESCE": {1, 8},
}

// parseFuncCall parses name(args...) after the identifier has been consumed.
func (p *parser) parseFuncCall(name string) (Expr, error) {
	upper := strings.ToUpper(name)
	arity, ok := scalarFuncs[upper]
	if !ok {
		return nil, p.errorf("unknown function %q", name)
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(tokSymbol, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(args) < arity[0] || len(args) > arity[1] {
		return nil, p.errorf("%s takes %d..%d arguments, got %d", upper, arity[0], arity[1], len(args))
	}
	return &FuncExpr{Name: upper, Args: args}, nil
}

var aggKeywords = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return &Literal{Val: sqltypes.NewInt(n)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.text)
		}
		return &Literal{Val: sqltypes.NewFloat(f)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: sqltypes.NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Val: sqltypes.Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		}
		if fn, ok := aggKeywords[t.text]; ok {
			p.advance()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			if fn == AggCount && p.accept(tokSymbol, "*") {
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return &AggExpr{Func: AggCount}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &AggExpr{Func: fn, Arg: arg}, nil
		}
		return nil, p.errorf("unexpected keyword %q", t.text)
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		p.advance()
		if p.at(tokSymbol, "(") {
			return p.parseFuncCall(t.text)
		}
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col.text}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

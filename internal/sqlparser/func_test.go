package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func TestParseFuncCalls(t *testing.T) {
	cases := []string{
		"ABS(x)",
		"ROUND(x, 2)",
		"FLOOR(x)",
		"CEIL(x)",
		"MOD(a, b)",
		"UPPER(s)",
		"LOWER(s)",
		"LENGTH(s)",
		"SUBSTR(s, 2)",
		"SUBSTR(s, 2, 3)",
		"COALESCE(a, b, 0)",
	}
	for _, src := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		fe, ok := e.(*FuncExpr)
		if !ok {
			t.Fatalf("%s parsed as %T", src, e)
		}
		if fe.String() != src {
			t.Errorf("round-trip %q -> %q", src, fe.String())
		}
	}
}

func TestParseFuncErrors(t *testing.T) {
	bad := []string{
		"NOFUNC(x)",  // unknown function
		"ABS()",      // too few args
		"ABS(a, b)",  // too many args
		"MOD(a)",     // arity
		"SUBSTR(s)",  // arity
		"COALESCE()", // arity
		"ABS(x",      // unterminated
		"LOWER(x,)",  // trailing comma
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestFuncCaseInsensitiveNames(t *testing.T) {
	e, err := ParseExpr("abs(x)")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*FuncExpr).Name != "ABS" {
		t.Fatalf("name: %s", e.(*FuncExpr).Name)
	}
}

func evalFuncStr(t *testing.T, src string) sqltypes.Value {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "t", Name: "i", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "t", Name: "f", Type: sqltypes.KindFloat},
		sqltypes.Column{Table: "t", Name: "s", Type: sqltypes.KindString},
		sqltypes.Column{Table: "t", Name: "n", Type: sqltypes.KindInt},
	)
	row := sqltypes.Row{
		sqltypes.NewInt(-7),
		sqltypes.NewFloat(3.456),
		sqltypes.NewString("Hello"),
		sqltypes.Null,
	}
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, row, schema)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalScalarFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want sqltypes.Value
	}{
		{"ABS(i)", sqltypes.NewInt(7)},
		{"ABS(f)", sqltypes.NewFloat(3.456)},
		{"ROUND(f)", sqltypes.NewFloat(3)},
		{"ROUND(f, 2)", sqltypes.NewFloat(3.46)},
		{"FLOOR(f)", sqltypes.NewFloat(3)},
		{"CEIL(f)", sqltypes.NewFloat(4)},
		{"MOD(i, 3)", sqltypes.NewInt(-1)},
		{"MOD(7, 0)", sqltypes.Null},
		{"UPPER(s)", sqltypes.NewString("HELLO")},
		{"LOWER(s)", sqltypes.NewString("hello")},
		{"LENGTH(s)", sqltypes.NewInt(5)},
		{"SUBSTR(s, 2)", sqltypes.NewString("ello")},
		{"SUBSTR(s, 2, 3)", sqltypes.NewString("ell")},
		{"SUBSTR(s, 99)", sqltypes.NewString("")},
		{"SUBSTR(s, 1, 0)", sqltypes.NewString("")},
		{"COALESCE(n, i)", sqltypes.NewInt(-7)},
		{"COALESCE(n, n)", sqltypes.Null},
		{"COALESCE(s, 'x')", sqltypes.NewString("Hello")},
		// NULL propagation.
		{"ABS(n)", sqltypes.Null},
		{"UPPER(COALESCE(n, 'y'))", sqltypes.NewString("Y")},
	}
	for _, c := range cases {
		got := evalFuncStr(t, c.src)
		if got.IsNull() != c.want.IsNull() {
			t.Errorf("%s = %v want %v", c.src, got, c.want)
			continue
		}
		if !got.IsNull() && sqltypes.Compare(got, c.want) != 0 {
			t.Errorf("%s = %v want %v", c.src, got, c.want)
		}
	}
}

func TestEvalFuncTypeErrors(t *testing.T) {
	bad := []string{
		"ABS(s)", "ROUND(s)", "FLOOR(s)", "CEIL(s)",
		"MOD(f, 2)", "UPPER(i)", "LOWER(i)", "LENGTH(i)", "SUBSTR(i, 1)",
	}
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "t", Name: "i", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "t", Name: "f", Type: sqltypes.KindFloat},
		sqltypes.Column{Table: "t", Name: "s", Type: sqltypes.KindString},
	)
	row := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewFloat(1.5), sqltypes.NewString("x")}
	for _, src := range bad {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(e, row, schema); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestFuncInStatements(t *testing.T) {
	stmt := MustParse("SELECT UPPER(t.name) AS u, ABS(t.v) FROM t WHERE LENGTH(t.name) > 3 GROUP BY UPPER(t.name) HAVING COUNT(*) > MOD(10, 3) ORDER BY LENGTH(t.name)")
	if stmt.Where == nil || len(stmt.GroupBy) != 1 {
		t.Fatal("clauses")
	}
	// Canonicalization keeps function names.
	canon := CanonicalizeSQL(stmt.String())
	if !strings.Contains(canon, "UPPER") {
		t.Fatalf("canonical: %s", canon)
	}
	// Column refs collected through functions.
	refs := CollectColumnRefs(stmt.Where, nil)
	if len(refs) != 1 || refs[0].Name != "name" {
		t.Fatalf("refs: %v", refs)
	}
	// Aggregates not confused with scalar functions.
	if containsAgg(stmt.Select[0].Expr) {
		t.Fatal("UPPER is not an aggregate")
	}
	if !stmt.HasAggregates() {
		t.Fatal("HAVING COUNT(*) makes it aggregated")
	}
}

package sqlparser

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqltypes"
)

// Eval evaluates a non-aggregate expression against a row with the given
// schema. Aggregate expressions must be handled by the executor's aggregation
// operator; encountering one here is an error.
func Eval(e Expr, row sqltypes.Row, schema *sqltypes.Schema) (sqltypes.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		i, err := schema.ColumnIndex(x.Table, x.Name)
		if err != nil {
			return sqltypes.Null, err
		}
		return row[i], nil
	case *BinaryExpr:
		return evalBinary(x, row, schema)
	case *NotExpr:
		v, err := Eval(x.Inner, row, schema)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(!truthy(v)), nil
	case *IsNullExpr:
		v, err := Eval(x.Inner, row, schema)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(v.IsNull() != x.Negate), nil
	case *InExpr:
		return evalIn(x, row, schema)
	case *BetweenExpr:
		return evalBetween(x, row, schema)
	case *LikeExpr:
		return evalLike(x, row, schema)
	case *FuncExpr:
		return evalFunc(x, row, schema)
	case *AggExpr:
		return sqltypes.Null, fmt.Errorf("sqlparser: aggregate %s evaluated outside aggregation", x)
	default:
		return sqltypes.Null, fmt.Errorf("sqlparser: cannot evaluate %T", e)
	}
}

// EvalBool evaluates a predicate; SQL three-valued logic collapses NULL to
// false for filtering purposes.
func EvalBool(e Expr, row sqltypes.Row, schema *sqltypes.Schema) (bool, error) {
	v, err := Eval(e, row, schema)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truthy(v), nil
}

// Truthy reports SQL truthiness of a non-NULL value: nonzero numerics and
// booleans, non-empty strings. Exported for the vectorized kernels, which
// must collapse predicate results exactly like EvalBool.
func Truthy(v sqltypes.Value) bool { return truthy(v) }

func truthy(v sqltypes.Value) bool {
	switch v.Kind() {
	case sqltypes.KindBool:
		return v.Bool()
	case sqltypes.KindInt:
		return v.Int() != 0
	case sqltypes.KindFloat:
		return v.Float() != 0
	case sqltypes.KindString:
		return v.Str() != ""
	default:
		return false
	}
}

func evalBinary(x *BinaryExpr, row sqltypes.Row, schema *sqltypes.Schema) (sqltypes.Value, error) {
	// AND/OR use three-valued logic with short-circuiting.
	switch x.Op {
	case OpAnd, OpOr:
		lv, err := Eval(x.Left, row, schema)
		if err != nil {
			return sqltypes.Null, err
		}
		if x.Op == OpAnd {
			if !lv.IsNull() && !truthy(lv) {
				return sqltypes.NewBool(false), nil
			}
		} else {
			if !lv.IsNull() && truthy(lv) {
				return sqltypes.NewBool(true), nil
			}
		}
		rv, err := Eval(x.Right, row, schema)
		if err != nil {
			return sqltypes.Null, err
		}
		if x.Op == OpAnd {
			switch {
			case !rv.IsNull() && !truthy(rv):
				return sqltypes.NewBool(false), nil
			case lv.IsNull() || rv.IsNull():
				return sqltypes.Null, nil
			default:
				return sqltypes.NewBool(true), nil
			}
		}
		switch {
		case !rv.IsNull() && truthy(rv):
			return sqltypes.NewBool(true), nil
		case lv.IsNull() || rv.IsNull():
			return sqltypes.Null, nil
		default:
			return sqltypes.NewBool(false), nil
		}
	}
	lv, err := Eval(x.Left, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	rv, err := Eval(x.Right, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	return ApplyBinary(x.Op, lv, rv)
}

// ApplyBinary applies a non-AND/OR binary operator to two evaluated
// operands, reproducing evalBinary's comparison, arithmetic and error
// behavior. The vectorized expression compiler calls it cell-by-cell for
// operand kinds it has no typed kernel for.
func ApplyBinary(op BinaryOp, lv, rv sqltypes.Value) (sqltypes.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return sqltypes.Null, nil
	}
	if op.IsComparison() {
		c := sqltypes.Compare(lv, rv)
		var res bool
		switch op {
		case OpEq:
			res = c == 0
		case OpNe:
			res = c != 0
		case OpLt:
			res = c < 0
		case OpLe:
			res = c <= 0
		case OpGt:
			res = c > 0
		case OpGe:
			res = c >= 0
		}
		return sqltypes.NewBool(res), nil
	}
	// Arithmetic.
	if !lv.IsNumeric() || !rv.IsNumeric() {
		if op == OpAdd && lv.Kind() == sqltypes.KindString && rv.Kind() == sqltypes.KindString {
			return sqltypes.NewString(lv.Str() + rv.Str()), nil
		}
		return sqltypes.Null, fmt.Errorf("sqlparser: non-numeric operands for %s: %s, %s", op, lv.Kind(), rv.Kind())
	}
	bothInt := lv.Kind() == sqltypes.KindInt && rv.Kind() == sqltypes.KindInt
	switch op {
	case OpAdd:
		if bothInt {
			return sqltypes.NewInt(lv.Int() + rv.Int()), nil
		}
		return sqltypes.NewFloat(lv.Float() + rv.Float()), nil
	case OpSub:
		if bothInt {
			return sqltypes.NewInt(lv.Int() - rv.Int()), nil
		}
		return sqltypes.NewFloat(lv.Float() - rv.Float()), nil
	case OpMul:
		if bothInt {
			return sqltypes.NewInt(lv.Int() * rv.Int()), nil
		}
		return sqltypes.NewFloat(lv.Float() * rv.Float()), nil
	case OpDiv:
		if rv.Float() == 0 {
			return sqltypes.Null, nil // SQL-ish: division by zero yields NULL here
		}
		if bothInt {
			return sqltypes.NewInt(lv.Int() / rv.Int()), nil
		}
		return sqltypes.NewFloat(lv.Float() / rv.Float()), nil
	}
	return sqltypes.Null, fmt.Errorf("sqlparser: unhandled operator %s", op)
}

func evalIn(x *InExpr, row sqltypes.Row, schema *sqltypes.Schema) (sqltypes.Value, error) {
	needle, err := Eval(x.Needle, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	if needle.IsNull() {
		return sqltypes.Null, nil
	}
	sawNull := false
	for _, item := range x.List {
		v, err := Eval(item, row, schema)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if sqltypes.Compare(needle, v) == 0 {
			return sqltypes.NewBool(!x.Negate), nil
		}
	}
	if sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(x.Negate), nil
}

func evalBetween(x *BetweenExpr, row sqltypes.Row, schema *sqltypes.Schema) (sqltypes.Value, error) {
	v, err := Eval(x.Subject, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	lo, err := Eval(x.Lo, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	hi, err := Eval(x.Hi, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqltypes.Null, nil
	}
	in := sqltypes.Compare(v, lo) >= 0 && sqltypes.Compare(v, hi) <= 0
	return sqltypes.NewBool(in != x.Negate), nil
}

func evalLike(x *LikeExpr, row sqltypes.Row, schema *sqltypes.Schema) (sqltypes.Value, error) {
	v, err := Eval(x.Subject, row, schema)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	if v.Kind() != sqltypes.KindString {
		return sqltypes.Null, fmt.Errorf("sqlparser: LIKE on non-string %s", v.Kind())
	}
	match := likeMatch(v.Str(), x.Pattern)
	return sqltypes.NewBool(match != x.Negate), nil
}

// LikeMatch reports whether s matches a LIKE pattern with % (any run) and
// _ (any single char). Exported for the vectorized kernels.
func LikeMatch(s, pattern string) bool { return likeMatch(s, pattern) }

// likeMatch implements LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return likeExact(s, pattern)
	}
	// Leading segment must be a prefix.
	if parts[0] != "" {
		if len(s) < len(parts[0]) || !likeExact(s[:len(parts[0])], parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	// Trailing segment must be a suffix.
	last := parts[len(parts)-1]
	if last != "" {
		if len(s) < len(last) || !likeExact(s[len(s)-len(last):], last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	// Middle segments must appear in order.
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := indexLike(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return true
}

func likeExact(s, pat string) bool {
	if len(s) != len(pat) {
		return false
	}
	for i := 0; i < len(pat); i++ {
		if pat[i] != '_' && pat[i] != s[i] {
			return false
		}
	}
	return true
}

func indexLike(s, pat string) int {
	for i := 0; i+len(pat) <= len(s); i++ {
		if likeExact(s[i:i+len(pat)], pat) {
			return i
		}
	}
	return -1
}

// evalFunc evaluates a scalar function call.
func evalFunc(x *FuncExpr, row sqltypes.Row, schema *sqltypes.Schema) (sqltypes.Value, error) {
	// COALESCE short-circuits on the first non-NULL argument.
	if x.Name == "COALESCE" {
		for _, a := range x.Args {
			v, err := Eval(a, row, schema)
			if err != nil {
				return sqltypes.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return sqltypes.Null, nil
	}
	args := make([]sqltypes.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(a, row, schema)
		if err != nil {
			return sqltypes.Null, err
		}
		// Scalar functions are NULL-propagating.
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		args[i] = v
	}
	return ApplyFunc(x.Name, args)
}

// ApplyFunc applies a scalar function (COALESCE excepted — its short-circuit
// is the caller's concern) to fully-evaluated, non-NULL arguments,
// reproducing evalFunc's result and error behavior. Exported for the
// vectorized kernels.
func ApplyFunc(name string, args []sqltypes.Value) (sqltypes.Value, error) {
	switch name {
	case "ABS":
		if !args[0].IsNumeric() {
			return sqltypes.Null, fmt.Errorf("sqlparser: ABS on %s", args[0].Kind())
		}
		if args[0].Kind() == sqltypes.KindInt {
			n := args[0].Int()
			if n < 0 {
				n = -n
			}
			return sqltypes.NewInt(n), nil
		}
		return sqltypes.NewFloat(math.Abs(args[0].Float())), nil
	case "ROUND":
		if !args[0].IsNumeric() {
			return sqltypes.Null, fmt.Errorf("sqlparser: ROUND on %s", args[0].Kind())
		}
		digits := 0.0
		if len(args) == 2 {
			if !args[1].IsNumeric() {
				return sqltypes.Null, fmt.Errorf("sqlparser: ROUND digits must be numeric")
			}
			digits = args[1].Float()
		}
		scale := math.Pow(10, digits)
		return sqltypes.NewFloat(math.Round(args[0].Float()*scale) / scale), nil
	case "FLOOR":
		if !args[0].IsNumeric() {
			return sqltypes.Null, fmt.Errorf("sqlparser: FLOOR on %s", args[0].Kind())
		}
		return sqltypes.NewFloat(math.Floor(args[0].Float())), nil
	case "CEIL":
		if !args[0].IsNumeric() {
			return sqltypes.Null, fmt.Errorf("sqlparser: CEIL on %s", args[0].Kind())
		}
		return sqltypes.NewFloat(math.Ceil(args[0].Float())), nil
	case "MOD":
		if args[0].Kind() != sqltypes.KindInt || args[1].Kind() != sqltypes.KindInt {
			return sqltypes.Null, fmt.Errorf("sqlparser: MOD needs integers")
		}
		if args[1].Int() == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt(args[0].Int() % args[1].Int()), nil
	case "UPPER":
		if args[0].Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("sqlparser: UPPER on %s", args[0].Kind())
		}
		return sqltypes.NewString(strings.ToUpper(args[0].Str())), nil
	case "LOWER":
		if args[0].Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("sqlparser: LOWER on %s", args[0].Kind())
		}
		return sqltypes.NewString(strings.ToLower(args[0].Str())), nil
	case "LENGTH":
		if args[0].Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("sqlparser: LENGTH on %s", args[0].Kind())
		}
		return sqltypes.NewInt(int64(len(args[0].Str()))), nil
	case "SUBSTR":
		if args[0].Kind() != sqltypes.KindString || !args[1].IsNumeric() {
			return sqltypes.Null, fmt.Errorf("sqlparser: SUBSTR(string, start [, len])")
		}
		s := args[0].Str()
		// SQL SUBSTR is 1-based.
		start := int(args[1].Int()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			if !args[2].IsNumeric() {
				return sqltypes.Null, fmt.Errorf("sqlparser: SUBSTR length must be numeric")
			}
			n := int(args[2].Int())
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
		return sqltypes.NewString(s[start:end]), nil
	default:
		return sqltypes.Null, fmt.Errorf("sqlparser: unknown function %q", name)
	}
}

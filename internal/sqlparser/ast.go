package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/sqltypes"
)

// Expr is a SQL expression AST node. Every node renders back to canonical
// SQL via String, which the rest of the system uses for plan signatures and
// for shipping fragments to remote servers as text.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

func (*Literal) exprNode()        {}
func (l *Literal) String() string { return l.Val.String() }

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpAnd BinaryOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binaryOpNames = map[BinaryOp]string{
	OpAnd: "AND", OpOr: "OR", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string { return binaryOpNames[op] }

// IsComparison reports whether the operator yields a boolean from two scalars.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

func (*BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op.String() + " " + b.Right.String() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) exprNode()        {}
func (n *NotExpr) String() string { return "(NOT " + n.Inner.String() + ")" }

// IsNullExpr tests nullness.
type IsNullExpr struct {
	Inner  Expr
	Negate bool // IS NOT NULL
}

func (*IsNullExpr) exprNode() {}
func (n *IsNullExpr) String() string {
	if n.Negate {
		return "(" + n.Inner.String() + " IS NOT NULL)"
	}
	return "(" + n.Inner.String() + " IS NULL)"
}

// InExpr tests membership in a literal list.
type InExpr struct {
	Needle Expr
	List   []Expr
	Negate bool
}

func (*InExpr) exprNode() {}
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := "IN"
	if e.Negate {
		op = "NOT IN"
	}
	return "(" + e.Needle.String() + " " + op + " (" + strings.Join(parts, ", ") + "))"
}

// BetweenExpr tests range membership, inclusive.
type BetweenExpr struct {
	Subject Expr
	Lo, Hi  Expr
	Negate  bool
}

func (*BetweenExpr) exprNode() {}
func (e *BetweenExpr) String() string {
	op := "BETWEEN"
	if e.Negate {
		op = "NOT BETWEEN"
	}
	return "(" + e.Subject.String() + " " + op + " " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// LikeExpr is a simple LIKE with % wildcards only.
type LikeExpr struct {
	Subject Expr
	Pattern string
	Negate  bool
}

func (*LikeExpr) exprNode() {}
func (e *LikeExpr) String() string {
	op := "LIKE"
	if e.Negate {
		op = "NOT LIKE"
	}
	return "(" + e.Subject.String() + " " + op + " " + sqltypes.NewString(e.Pattern).String() + ")"
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggFunc]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

// String returns the SQL spelling of the aggregate.
func (a AggFunc) String() string { return aggNames[a] }

// AggExpr is an aggregate call. Arg is nil for COUNT(*).
type AggExpr struct {
	Func AggFunc
	Arg  Expr // nil means COUNT(*)
}

func (*AggExpr) exprNode() {}
func (a *AggExpr) String() string {
	if a.Arg == nil {
		return a.Func.String() + "(*)"
	}
	return a.Func.String() + "(" + a.Arg.String() + ")"
}

// FuncExpr is a scalar function call. Supported functions: ABS, ROUND,
// FLOOR, CEIL, MOD, UPPER, LOWER, LENGTH, SUBSTR, COALESCE.
type FuncExpr struct {
	// Name is the upper-cased function name.
	Name string
	Args []Expr
}

func (*FuncExpr) exprNode() {}
func (f *FuncExpr) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// SelectItem is one projection in the select list.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// String renders the item.
func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	out := s.Expr.String()
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// TableRef is a base table reference with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveName is the alias when present, otherwise the table name.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// JoinClause is an explicit INNER JOIN with its ON condition.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders the key.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String() + " ASC"
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// Tables returns every table referenced in FROM and JOIN, in order.
func (s *SelectStmt) Tables() []TableRef {
	out := []TableRef{s.From}
	for _, j := range s.Joins {
		out = append(out, j.Table)
	}
	return out
}

// HasAggregates reports whether the select list or HAVING contains an
// aggregate call.
func (s *SelectStmt) HasAggregates() bool {
	for _, item := range s.Select {
		if item.Star {
			continue
		}
		if containsAgg(item.Expr) {
			return true
		}
	}
	return s.Having != nil && containsAgg(s.Having)
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return containsAgg(x.Left) || containsAgg(x.Right)
	case *NotExpr:
		return containsAgg(x.Inner)
	case *IsNullExpr:
		return containsAgg(x.Inner)
	case *InExpr:
		if containsAgg(x.Needle) {
			return true
		}
		for _, item := range x.List {
			if containsAgg(item) {
				return true
			}
		}
	case *BetweenExpr:
		return containsAgg(x.Subject) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case *LikeExpr:
		return containsAgg(x.Subject)
	case *FuncExpr:
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
	}
	return false
}

// String renders the statement back to canonical SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	parts := make([]string, len(s.Select))
	for i, item := range s.Select {
		parts[i] = item.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(" FROM ")
	b.WriteString(s.From.String())
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.String() + " ON " + j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(keys, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.String()
		}
		b.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if s.Limit >= 0 {
		b.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return b.String()
}

// CollectColumnRefs appends every column reference in e to out and returns it.
func CollectColumnRefs(e Expr, out []*ColumnRef) []*ColumnRef {
	switch x := e.(type) {
	case *ColumnRef:
		out = append(out, x)
	case *BinaryExpr:
		out = CollectColumnRefs(x.Left, out)
		out = CollectColumnRefs(x.Right, out)
	case *NotExpr:
		out = CollectColumnRefs(x.Inner, out)
	case *IsNullExpr:
		out = CollectColumnRefs(x.Inner, out)
	case *InExpr:
		out = CollectColumnRefs(x.Needle, out)
		for _, item := range x.List {
			out = CollectColumnRefs(item, out)
		}
	case *BetweenExpr:
		out = CollectColumnRefs(x.Subject, out)
		out = CollectColumnRefs(x.Lo, out)
		out = CollectColumnRefs(x.Hi, out)
	case *LikeExpr:
		out = CollectColumnRefs(x.Subject, out)
	case *AggExpr:
		if x.Arg != nil {
			out = CollectColumnRefs(x.Arg, out)
		}
	case *FuncExpr:
		for _, a := range x.Args {
			out = CollectColumnRefs(a, out)
		}
	}
	return out
}

// SplitConjuncts flattens an AND tree into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds an AND tree from conjuncts; nil for an empty list.
func JoinConjuncts(list []Expr) Expr {
	if len(list) == 0 {
		return nil
	}
	out := list[0]
	for _, e := range list[1:] {
		out = &BinaryExpr{Op: OpAnd, Left: out, Right: e}
	}
	return out
}

package sqlparser

import (
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

var evalSchema = sqltypes.NewSchema(
	sqltypes.Column{Table: "t", Name: "a", Type: sqltypes.KindInt},
	sqltypes.Column{Table: "t", Name: "b", Type: sqltypes.KindFloat},
	sqltypes.Column{Table: "t", Name: "s", Type: sqltypes.KindString},
	sqltypes.Column{Table: "t", Name: "n", Type: sqltypes.KindInt}, // often NULL
)

func evalRow() sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(10),
		sqltypes.NewFloat(2.5),
		sqltypes.NewString("hello"),
		sqltypes.Null,
	}
}

func mustEval(t *testing.T, src string) sqltypes.Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, evalRow(), evalSchema)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want sqltypes.Value
	}{
		{"a + 5", sqltypes.NewInt(15)},
		{"a - 3", sqltypes.NewInt(7)},
		{"a * 2", sqltypes.NewInt(20)},
		{"a / 4", sqltypes.NewInt(2)},
		{"a + b", sqltypes.NewFloat(12.5)},
		{"b * 2", sqltypes.NewFloat(5.0)},
		{"-a", sqltypes.NewInt(-10)},
		{"a / 0", sqltypes.Null},
		{"'x' + 'y'", sqltypes.NewString("xy")},
	}
	for _, c := range cases {
		got := mustEval(t, c.src)
		if got.Kind() != c.want.Kind() || (got.Kind() != sqltypes.KindNull && sqltypes.Compare(got, c.want) != 0) {
			t.Errorf("%s = %v want %v", c.src, got, c.want)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	trueCases := []string{
		"a = 10", "a <> 9", "a > 9", "a >= 10", "a < 11", "a <= 10",
		"b = 2.5", "s = 'hello'", "a > b",
	}
	for _, src := range trueCases {
		if v := mustEval(t, src); !v.Bool() {
			t.Errorf("%s should be true", src)
		}
	}
	falseCases := []string{"a = 9", "a < 10", "s = 'bye'"}
	for _, src := range falseCases {
		if v := mustEval(t, src); v.Bool() {
			t.Errorf("%s should be false", src)
		}
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	nullCases := []string{
		"n = 1", "n + 1", "n > 0", "NOT (n = 1)",
		"n IN (1, 2)", "1 IN (n)", "n BETWEEN 1 AND 2",
	}
	for _, src := range nullCases {
		if v := mustEval(t, src); !v.IsNull() {
			t.Errorf("%s should be NULL, got %v", src, v)
		}
	}
	// AND/OR absorption with NULL.
	if v := mustEval(t, "n = 1 AND a = 9"); v.IsNull() || v.Bool() {
		t.Errorf("NULL AND false should be false, got %v", v)
	}
	if v := mustEval(t, "n = 1 OR a = 10"); v.IsNull() || !v.Bool() {
		t.Errorf("NULL OR true should be true, got %v", v)
	}
	if v := mustEval(t, "n = 1 AND a = 10"); !v.IsNull() {
		t.Errorf("NULL AND true should be NULL, got %v", v)
	}
	if v := mustEval(t, "n = 1 OR a = 9"); !v.IsNull() {
		t.Errorf("NULL OR false should be NULL, got %v", v)
	}
}

func TestEvalIsNull(t *testing.T) {
	if !mustEval(t, "n IS NULL").Bool() {
		t.Fatal("n IS NULL")
	}
	if mustEval(t, "a IS NULL").Bool() {
		t.Fatal("a IS NULL should be false")
	}
	if !mustEval(t, "a IS NOT NULL").Bool() {
		t.Fatal("a IS NOT NULL")
	}
}

func TestEvalInBetween(t *testing.T) {
	if !mustEval(t, "a IN (5, 10, 15)").Bool() {
		t.Fatal("IN hit")
	}
	if mustEval(t, "a IN (5, 15)").Bool() {
		t.Fatal("IN miss")
	}
	if !mustEval(t, "a NOT IN (5, 15)").Bool() {
		t.Fatal("NOT IN")
	}
	if !mustEval(t, "a BETWEEN 10 AND 20").Bool() {
		t.Fatal("BETWEEN inclusive low")
	}
	if !mustEval(t, "a BETWEEN 0 AND 10").Bool() {
		t.Fatal("BETWEEN inclusive high")
	}
	if mustEval(t, "a BETWEEN 11 AND 20").Bool() {
		t.Fatal("BETWEEN miss")
	}
	if !mustEval(t, "a NOT BETWEEN 11 AND 20").Bool() {
		t.Fatal("NOT BETWEEN")
	}
}

func TestEvalLike(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"s LIKE 'hello'", true},
		{"s LIKE 'h%'", true},
		{"s LIKE '%o'", true},
		{"s LIKE '%ell%'", true},
		{"s LIKE 'h_llo'", true},
		{"s LIKE 'h_'", false},
		{"s LIKE 'x%'", false},
		{"s NOT LIKE 'x%'", true},
		{"s LIKE '%'", true},
		{"s LIKE 'h%l%o'", true},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src).Bool(); got != c.want {
			t.Errorf("%s = %v want %v", c.src, got, c.want)
		}
	}
}

func TestEvalNot(t *testing.T) {
	if mustEval(t, "NOT a = 10").Bool() {
		t.Fatal("NOT true")
	}
	if !mustEval(t, "NOT a = 9").Bool() {
		t.Fatal("NOT false")
	}
}

func TestEvalBoolCollapsesNull(t *testing.T) {
	e, _ := ParseExpr("n = 1")
	ok, err := EvalBool(e, evalRow(), evalSchema)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("NULL predicate must filter out")
	}
}

func TestEvalAggregateOutsideAggregationErrors(t *testing.T) {
	e, _ := ParseExpr("SUM(a)")
	if _, err := Eval(e, evalRow(), evalSchema); err == nil {
		t.Fatal("aggregate outside aggregation must error")
	}
}

func TestEvalUnknownColumnErrors(t *testing.T) {
	e, _ := ParseExpr("zz > 1")
	if _, err := Eval(e, evalRow(), evalSchema); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestEvalNonNumericArithmeticErrors(t *testing.T) {
	e, _ := ParseExpr("s * 2")
	if _, err := Eval(e, evalRow(), evalSchema); err == nil {
		t.Fatal("string * int must error")
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// prefix% must match any string with that prefix.
	f := func(prefix, rest string) bool {
		return likeMatch(prefix+rest, prefix+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// %suffix must match any string with that suffix.
	g := func(head, suffix string) bool {
		return likeMatch(head+suffix, "%"+suffix)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalComparisonNullPropagation(t *testing.T) {
	f := func(x int64) bool {
		e := &BinaryExpr{Op: OpLt, Left: &ColumnRef{Table: "t", Name: "n"}, Right: &Literal{Val: sqltypes.NewInt(x)}}
		v, err := Eval(e, evalRow(), evalSchema)
		return err == nil && v.IsNull()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

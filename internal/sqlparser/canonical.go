package sqlparser

import "strings"

// CanonicalizeSQL normalizes a statement for use as a calibration key:
// literals become '?', keywords upper-case, whitespace collapses. Queries
// that differ only in parameter values share a canonical form, so a
// calibration factor learned from some instances of a query type applies to
// future, yet-unseen instances — the generalization §3.1 relies on.
//
// Unparseable input canonicalizes token-by-token; the function never fails.
func CanonicalizeSQL(src string) string {
	toks, err := lex(src)
	if err != nil {
		return strings.Join(strings.Fields(src), " ")
	}
	parts := make([]string, 0, len(toks))
	for i, t := range toks {
		switch t.kind {
		case tokEOF:
		case tokInt, tokFloat, tokString:
			parts = append(parts, "?")
		case tokSymbol:
			// Fold a unary minus into the literal's placeholder: "x > -5" and
			// "x > 5" are parameter variants of the same query type and must
			// share a canonical form. The minus is binary — and kept — only
			// when the preceding token can terminate an operand.
			if t.text == "-" && i+1 < len(toks) &&
				(toks[i+1].kind == tokInt || toks[i+1].kind == tokFloat) &&
				!operandBefore(toks, i) {
				continue
			}
			parts = append(parts, t.text)
		default:
			parts = append(parts, t.text)
		}
	}
	return strings.Join(parts, " ")
}

// operandBefore reports whether the token before position i can terminate an
// operand, which makes a following '-' a binary subtraction rather than a
// sign.
func operandBefore(toks []token, i int) bool {
	if i == 0 {
		return false
	}
	switch p := toks[i-1]; p.kind {
	case tokIdent, tokInt, tokFloat, tokString:
		return true
	case tokSymbol:
		return p.text == ")"
	default:
		return false
	}
}

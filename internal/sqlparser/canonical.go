package sqlparser

import "strings"

// CanonicalizeSQL normalizes a statement for use as a calibration key:
// literals become '?', keywords upper-case, whitespace collapses. Queries
// that differ only in parameter values share a canonical form, so a
// calibration factor learned from some instances of a query type applies to
// future, yet-unseen instances — the generalization §3.1 relies on.
//
// Unparseable input canonicalizes token-by-token; the function never fails.
func CanonicalizeSQL(src string) string {
	toks, err := lex(src)
	if err != nil {
		return strings.Join(strings.Fields(src), " ")
	}
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.kind {
		case tokEOF:
		case tokInt, tokFloat, tokString:
			parts = append(parts, "?")
		case tokKeyword:
			parts = append(parts, t.text)
		default:
			parts = append(parts, t.text)
		}
	}
	return strings.Join(parts, " ")
}

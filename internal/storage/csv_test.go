package storage

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func csvFixture(t *testing.T) *Table {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "t", Name: "id", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "t", Name: "v", Type: sqltypes.KindFloat},
		sqltypes.Column{Table: "t", Name: "name", Type: sqltypes.KindString},
		sqltypes.Column{Table: "t", Name: "flag", Type: sqltypes.KindBool},
	)
	tab := NewTable("t", schema)
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewFloat(1.5), sqltypes.NewString("plain"), sqltypes.NewBool(true)},
		{sqltypes.NewInt(2), sqltypes.Null, sqltypes.NewString("with,comma"), sqltypes.NewBool(false)},
		{sqltypes.NewInt(3), sqltypes.NewFloat(-0.25), sqltypes.NewString(`quote"inside`), sqltypes.Null},
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCSVRoundTrip(t *testing.T) {
	src := csvFixture(t)
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowCount() != src.RowCount() {
		t.Fatalf("rows: %d vs %d", got.RowCount(), src.RowCount())
	}
	for i := 0; i < src.RowCount(); i++ {
		a, _ := src.Row(i)
		b, _ := got.Row(i)
		for j := range a {
			if a[j].IsNull() != b[j].IsNull() {
				t.Fatalf("row %d col %d nullness: %v vs %v", i, j, a[j], b[j])
			}
			if !a[j].IsNull() && sqltypes.Compare(a[j], b[j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
	// Schema kinds survive.
	for j, c := range src.Schema().Columns {
		if got.Schema().Columns[j].Type != c.Type {
			t.Fatalf("col %d kind: %v vs %v", j, got.Schema().Columns[j].Type, c.Type)
		}
	}
}

func TestCSVHeaderFormat(t *testing.T) {
	src := csvFixture(t)
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if header != "id:INT,v:FLOAT,name:STRING,flag:BOOL" {
		t.Fatalf("header: %q", header)
	}
}

func TestReadCSVHandWritten(t *testing.T) {
	in := "pk:INT,label:STRING\n1,alpha\n2,beta\n"
	tab, err := ReadCSV("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 2 {
		t.Fatalf("rows: %d", tab.RowCount())
	}
	r, _ := tab.Row(1)
	if r[0].Int() != 2 || r[1].Str() != "beta" {
		t.Fatalf("row: %v", r)
	}
	// Untyped header defaults to STRING.
	tab, err = ReadCSV("y", strings.NewReader("a,b\nx,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema().Columns[0].Type != sqltypes.KindString {
		t.Fatal("untyped default")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"a:WEIRD\n1\n",          // unknown type tag
		"a:INT,b:INT\n1\n",      // arity mismatch
		"a:INT\nnot-a-number\n", // bad int
		"a:FLOAT\nxyz\n",        // bad float
		"a:BOOL\nmaybe\n",       // bad bool
	}
	for _, in := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", in)
		}
	}
}

func TestCSVNullRoundTrip(t *testing.T) {
	in := "a:INT,b:STRING\n,\n5,hello\n"
	tab, err := ReadCSV("n", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := tab.Row(0)
	if !r0[0].IsNull() || !r0[1].IsNull() {
		t.Fatalf("empty fields must be NULL: %v", r0)
	}
}

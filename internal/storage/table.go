// Package storage implements the in-memory table storage used by the
// simulated remote DBMS servers: heap tables, hash and sorted indexes,
// seeded synthetic data generation, and the update application path driven
// by the background update-load generator.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sqltypes"
	"repro/internal/stats"
)

// PageSize is the notional page size (bytes) used to translate table volume
// into IO pages for the cost and timing models.
const PageSize = 4096

// Table is an in-memory heap table with optional indexes.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *sqltypes.Schema
	rows    []sqltypes.Row
	indexes map[string]*Index
	stats   *stats.TableStats // refreshed lazily (RUNSTATS-style)
	dirty   bool
	version int64 // bumped on every mutation; buffer-pool model uses it
	// virtual, when set, makes the table a statistics-only shell: Stats()
	// returns it and Pages() derives from it. QCC's simulated federated
	// system registers such "virtual tables ... without storing the actual
	// data" (§2) to run what-if explains.
	virtual *stats.TableStats
}

// NewTable creates an empty table.
func NewTable(name string, schema *sqltypes.Schema) *Table {
	return &Table{name: name, schema: schema, indexes: map[string]*Index{}}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *sqltypes.Schema { return t.schema }

// RowCount returns the current number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Version returns the mutation counter.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Pages returns the number of notional disk pages the table occupies.
func (t *Table) Pages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pagesLocked()
}

func (t *Table) pagesLocked() int {
	if t.virtual != nil {
		p := int(float64(t.virtual.RowCount) * t.virtual.AvgRowBytes / PageSize)
		if p == 0 && t.virtual.RowCount > 0 {
			p = 1
		}
		return p
	}
	bytes := 0
	for _, r := range t.rows {
		bytes += r.ByteSize()
	}
	p := bytes / PageSize
	if p == 0 && len(t.rows) > 0 {
		p = 1
	}
	return p
}

// Append adds rows in bulk (used by data generation and loads).
func (t *Table) Append(rows ...sqltypes.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != t.schema.Len() {
			return fmt.Errorf("storage: row arity %d != schema arity %d for %s", len(r), t.schema.Len(), t.name)
		}
	}
	base := len(t.rows)
	t.rows = append(t.rows, rows...)
	for _, idx := range t.indexes {
		for i, r := range rows {
			idx.insert(r, base+i)
		}
	}
	t.dirty = true
	t.version++
	return nil
}

// Scan invokes fn for every row; fn must not retain the row beyond the call
// unless it clones it. Scanning takes a read lock for the duration.
func (t *Table) Scan(fn func(row sqltypes.Row) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a copy of all rows (row slices are cloned shallowly;
// values are immutable).
func (t *Table) Snapshot() []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]sqltypes.Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return out
}

// Row returns the row at position i (cloned).
func (t *Table) Row(i int) (sqltypes.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.rows) {
		return nil, fmt.Errorf("storage: row %d out of range [0,%d)", i, len(t.rows))
	}
	return t.rows[i].Clone(), nil
}

// UpdateAt overwrites column col of row i; the update-load driver uses this
// to dirty pages.
func (t *Table) UpdateAt(i, col int, v sqltypes.Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.rows) {
		return fmt.Errorf("storage: row %d out of range", i)
	}
	if col < 0 || col >= t.schema.Len() {
		return fmt.Errorf("storage: column %d out of range", col)
	}
	old := t.rows[i][col]
	t.rows[i][col] = v
	for _, idx := range t.indexes {
		if idx.colIdx == col {
			idx.remove(old, i)
			idx.insertValue(v, i)
		}
	}
	t.dirty = true
	t.version++
	return nil
}

// CreateIndex builds an index on the named column. Hash indexes serve
// equality; sorted indexes additionally serve ranges.
func (t *Table) CreateIndex(name, column string, kind IndexKind) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci, err := t.schema.ColumnIndex("", column)
	if err != nil {
		// Try any qualifier.
		found := -1
		for i, c := range t.schema.Columns {
			if equalFold(c.Name, column) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, err
		}
		ci = found
	}
	if _, dup := t.indexes[name]; dup {
		return nil, fmt.Errorf("storage: index %q already exists on %s", name, t.name)
	}
	idx := newIndex(name, column, ci, kind)
	for i, r := range t.rows {
		idx.insert(r, i)
	}
	t.indexes[name] = idx
	return idx, nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Index returns the named index or nil.
func (t *Table) Index(name string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[name]
}

// IndexOnColumn returns some index whose key is the given column, preferring
// sorted indexes (which serve both equality and range probes), or nil.
func (t *Table) IndexOnColumn(column string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var hash *Index
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		idx := t.indexes[n]
		if !equalFold(idx.column, column) {
			continue
		}
		if idx.kind == IndexSorted {
			return idx
		}
		if hash == nil {
			hash = idx
		}
	}
	return hash
}

// Indexes lists index names, sorted.
func (t *Table) Indexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats returns (possibly cached) statistics; it recollects when the table
// has been mutated since the last collection, mimicking RUNSTATS. Virtual
// tables return their injected statistics.
func (t *Table) Stats() *stats.TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.virtual != nil {
		return t.virtual
	}
	if t.stats == nil || t.dirty {
		t.stats = stats.Collect(t.name, t.schema, t.rows)
		t.dirty = false
	}
	return t.stats
}

// SetVirtualStats turns the table into a statistics-only shell for what-if
// analysis: Stats and Pages answer from ts while the table holds no rows.
func (t *Table) SetVirtualStats(ts *stats.TableStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.virtual = ts
}

// IsVirtual reports whether the table is a statistics-only shell.
func (t *Table) IsVirtual() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.virtual != nil
}

// IndexMeta describes one index for catalog cloning.
type IndexMeta struct {
	Name   string
	Column string
	Kind   IndexKind
}

// IndexMetas lists index metadata, sorted by name.
func (t *Table) IndexMetas() []IndexMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]IndexMeta, 0, len(names))
	for _, n := range names {
		ix := t.indexes[n]
		out = append(out, IndexMeta{Name: ix.name, Column: ix.column, Kind: ix.kind})
	}
	return out
}

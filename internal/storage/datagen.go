package storage

import (
	"fmt"
	"math/rand"

	"repro/internal/sqltypes"
)

// ColumnGen describes how to generate one column of synthetic data.
type ColumnGen struct {
	Name string
	Type sqltypes.Kind
	// Gen produces the value for row i.
	Gen func(r *rand.Rand, i int) sqltypes.Value
}

// TableGen describes a synthetic table.
type TableGen struct {
	Name    string
	Rows    int
	Columns []ColumnGen
	// Indexes lists (indexName, column, kind) triples to build after load.
	Indexes []IndexGen
}

// IndexGen describes one index to create on a generated table.
type IndexGen struct {
	Name   string
	Column string
	Kind   IndexKind
}

// Generate materializes the table with a deterministic per-table RNG stream
// derived from seed, so replicas generated with the same seed are identical
// byte-for-byte across servers.
func (g TableGen) Generate(seed int64) (*Table, error) {
	cols := make([]sqltypes.Column, len(g.Columns))
	for i, c := range g.Columns {
		cols[i] = sqltypes.Column{Table: g.Name, Name: c.Name, Type: c.Type}
	}
	schema := sqltypes.NewSchema(cols...)
	t := NewTable(g.Name, schema)
	r := rand.New(rand.NewSource(seed ^ int64(hashString(g.Name))))
	rows := make([]sqltypes.Row, 0, g.Rows)
	for i := 0; i < g.Rows; i++ {
		row := make(sqltypes.Row, len(g.Columns))
		for j, c := range g.Columns {
			row[j] = c.Gen(r, i)
		}
		rows = append(rows, row)
	}
	if err := t.Append(rows...); err != nil {
		return nil, err
	}
	for _, ig := range g.Indexes {
		if _, err := t.CreateIndex(ig.Name, ig.Column, ig.Kind); err != nil {
			return nil, fmt.Errorf("storage: generating %s: %w", g.Name, err)
		}
	}
	return t, nil
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Common generators.

// SeqInt generates 0,1,2,... — a primary key.
func SeqInt() func(*rand.Rand, int) sqltypes.Value {
	return func(_ *rand.Rand, i int) sqltypes.Value { return sqltypes.NewInt(int64(i)) }
}

// UniformInt generates uniform integers in [0, n).
func UniformInt(n int64) func(*rand.Rand, int) sqltypes.Value {
	return func(r *rand.Rand, _ int) sqltypes.Value { return sqltypes.NewInt(r.Int63n(n)) }
}

// UniformFloat generates uniform floats in [lo, hi).
func UniformFloat(lo, hi float64) func(*rand.Rand, int) sqltypes.Value {
	return func(r *rand.Rand, _ int) sqltypes.Value {
		return sqltypes.NewFloat(lo + r.Float64()*(hi-lo))
	}
}

// Categorical picks uniformly from the given strings.
func Categorical(options ...string) func(*rand.Rand, int) sqltypes.Value {
	return func(r *rand.Rand, _ int) sqltypes.Value {
		return sqltypes.NewString(options[r.Intn(len(options))])
	}
}

// PaddedString generates deterministic strings like "name-000042" to give
// rows realistic width.
func PaddedString(prefix string) func(*rand.Rand, int) sqltypes.Value {
	return func(_ *rand.Rand, i int) sqltypes.Value {
		return sqltypes.NewString(fmt.Sprintf("%s-%06d", prefix, i))
	}
}

// SampleSchema returns the generator set for the experiment database,
// mirroring the paper's setup: large tables with ~100000 tuples and small
// tables with ~1000 tuples, replicated across servers (§5). The schema is a
// simplified order-entry schema in the spirit of the DB2 SAMPLE database.
//
//   - ORDERS   (large): o_id PK, o_custkey FK, o_amount, o_priority, o_qty
//   - LINEITEM (large): l_id PK, l_orderkey FK→ORDERS, l_qty, l_price, l_tag
//   - CUSTOMER (small): c_id PK, c_segment, c_discount
//   - PARTS    (small): p_id PK, p_type, p_weight
//
// Sizes can be scaled down for fast tests via the scale divisor (1 = paper
// scale).
func SampleSchema(scale int) []TableGen {
	if scale < 1 {
		scale = 1
	}
	large := 100000 / scale
	small := 1000 / scale
	if large < 10 {
		large = 10
	}
	if small < 5 {
		small = 5
	}
	return []TableGen{
		{
			Name: "orders",
			Rows: large,
			Columns: []ColumnGen{
				{Name: "o_id", Type: sqltypes.KindInt, Gen: SeqInt()},
				{Name: "o_custkey", Type: sqltypes.KindInt, Gen: UniformInt(int64(small))},
				{Name: "o_amount", Type: sqltypes.KindFloat, Gen: UniformFloat(0, 10000)},
				{Name: "o_priority", Type: sqltypes.KindInt, Gen: UniformInt(5)},
				{Name: "o_qty", Type: sqltypes.KindInt, Gen: UniformInt(100)},
			},
			Indexes: []IndexGen{
				{Name: "orders_pk", Column: "o_id", Kind: IndexSorted},
				{Name: "orders_cust", Column: "o_custkey", Kind: IndexHash},
			},
		},
		{
			Name: "lineitem",
			Rows: large,
			Columns: []ColumnGen{
				{Name: "l_id", Type: sqltypes.KindInt, Gen: SeqInt()},
				{Name: "l_orderkey", Type: sqltypes.KindInt, Gen: UniformInt(int64(large))},
				{Name: "l_qty", Type: sqltypes.KindInt, Gen: UniformInt(50)},
				{Name: "l_price", Type: sqltypes.KindFloat, Gen: UniformFloat(1, 1000)},
				{Name: "l_tag", Type: sqltypes.KindString, Gen: Categorical("std", "exp", "bulk", "promo")},
			},
			Indexes: []IndexGen{
				{Name: "lineitem_pk", Column: "l_id", Kind: IndexSorted},
				{Name: "lineitem_ord", Column: "l_orderkey", Kind: IndexSorted},
			},
		},
		{
			Name: "customer",
			Rows: small,
			Columns: []ColumnGen{
				{Name: "c_id", Type: sqltypes.KindInt, Gen: SeqInt()},
				{Name: "c_segment", Type: sqltypes.KindString, Gen: Categorical("auto", "house", "machine", "food")},
				{Name: "c_discount", Type: sqltypes.KindFloat, Gen: UniformFloat(0, 0.2)},
			},
			Indexes: []IndexGen{{Name: "customer_pk", Column: "c_id", Kind: IndexSorted}},
		},
		{
			Name: "parts",
			Rows: small,
			Columns: []ColumnGen{
				{Name: "p_id", Type: sqltypes.KindInt, Gen: SeqInt()},
				{Name: "p_type", Type: sqltypes.KindString, Gen: Categorical("bolt", "nut", "gear", "cam", "rod")},
				{Name: "p_weight", Type: sqltypes.KindFloat, Gen: UniformFloat(0.1, 50)},
			},
			Indexes: []IndexGen{{Name: "parts_pk", Column: "p_id", Kind: IndexSorted}},
		},
	}
}

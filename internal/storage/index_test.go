package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

func buildIndex(kind IndexKind, vals []int64) *Index {
	ix := newIndex("ix", "k", 0, kind)
	for i, v := range vals {
		ix.insert(sqltypes.Row{sqltypes.NewInt(v)}, i)
	}
	return ix
}

func TestHashIndexLookupEq(t *testing.T) {
	ix := buildIndex(IndexHash, []int64{5, 3, 5, 9})
	got := ix.LookupEq(sqltypes.NewInt(5))
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("eq lookup: %v", got)
	}
	if got := ix.LookupEq(sqltypes.NewInt(42)); len(got) != 0 {
		t.Fatalf("miss: %v", got)
	}
	if got := ix.LookupEq(sqltypes.Null); got != nil {
		t.Fatal("null probe must return nil")
	}
}

func TestHashIndexNoRange(t *testing.T) {
	ix := buildIndex(IndexHash, []int64{1, 2, 3})
	lo := sqltypes.NewInt(1)
	if got := ix.LookupRange(&lo, nil, true, true); got != nil {
		t.Fatal("hash index must not serve ranges")
	}
}

func TestSortedIndexRange(t *testing.T) {
	ix := buildIndex(IndexSorted, []int64{10, 20, 30, 40, 50})
	lo, hi := sqltypes.NewInt(20), sqltypes.NewInt(40)
	got := ix.LookupRange(&lo, &hi, true, true)
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("range [20,40]: %v", got)
	}
	got = ix.LookupRange(&lo, &hi, false, false)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("range (20,40): %v", got)
	}
	got = ix.LookupRange(&lo, nil, false, true)
	sort.Ints(got)
	if len(got) != 3 {
		t.Fatalf("open-above range: %v", got)
	}
	got = ix.LookupRange(nil, &hi, true, false)
	sort.Ints(got)
	if len(got) != 3 {
		t.Fatalf("open-below range: %v", got)
	}
	hi2 := sqltypes.NewInt(5)
	if got := ix.LookupRange(nil, &hi2, true, true); got != nil {
		t.Fatalf("empty range: %v", got)
	}
}

func TestSortedIndexDuplicates(t *testing.T) {
	ix := buildIndex(IndexSorted, []int64{7, 7, 7, 1})
	got := ix.LookupEq(sqltypes.NewInt(7))
	if len(got) != 3 {
		t.Fatalf("dup eq: %v", got)
	}
	lo := sqltypes.NewInt(7)
	got = ix.LookupRange(&lo, &lo, true, true)
	if len(got) != 3 {
		t.Fatalf("dup range: %v", got)
	}
}

func TestIndexRemove(t *testing.T) {
	ix := buildIndex(IndexSorted, []int64{1, 2, 3})
	ix.remove(sqltypes.NewInt(2), 1)
	if got := ix.LookupEq(sqltypes.NewInt(2)); len(got) != 0 {
		t.Fatalf("after remove: %v", got)
	}
	if ix.Len() != 2 {
		t.Fatalf("len after remove: %d", ix.Len())
	}
	lo, hi := sqltypes.NewInt(1), sqltypes.NewInt(3)
	if got := ix.LookupRange(&lo, &hi, true, true); len(got) != 2 {
		t.Fatalf("sorted after remove: %v", got)
	}
	// Removing NULL or absent values is a no-op.
	ix.remove(sqltypes.Null, 0)
	ix.remove(sqltypes.NewInt(99), 0)
}

func TestIndexNullsNotIndexed(t *testing.T) {
	ix := newIndex("ix", "k", 0, IndexSorted)
	ix.insert(sqltypes.Row{sqltypes.Null}, 0)
	ix.insert(sqltypes.Row{sqltypes.NewInt(1)}, 1)
	if ix.Len() != 1 {
		t.Fatalf("null must not be indexed: %d", ix.Len())
	}
}

// Property: sorted-index range lookup matches a linear scan filter.
func TestSortedIndexRangeMatchesScanProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = r.Int63n(50)
	}
	ix := buildIndex(IndexSorted, vals)
	f := func(a, b int64) bool {
		lo, hi := a%50, b%50
		if lo < 0 {
			lo = -lo
		}
		if hi < 0 {
			hi = -hi
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		lov, hiv := sqltypes.NewInt(lo), sqltypes.NewInt(hi)
		got := ix.LookupRange(&lov, &hiv, true, true)
		want := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexKindString(t *testing.T) {
	if IndexHash.String() != "HASH" || IndexSorted.String() != "SORTED" {
		t.Fatal("kind names")
	}
}

package storage

import (
	"testing"

	"repro/internal/sqltypes"
)

func TestGenerateDeterministicReplicas(t *testing.T) {
	gens := SampleSchema(100) // tiny for test speed
	g := gens[0]
	t1, err := g.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	if t1.RowCount() != t2.RowCount() {
		t.Fatal("replica row counts differ")
	}
	r1, _ := t1.Row(17)
	r2, _ := t2.Row(17)
	for i := range r1 {
		if sqltypes.Compare(r1[i], r2[i]) != 0 {
			t.Fatalf("replicas differ at row 17 col %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	t3, err := g.Generate(43)
	if err != nil {
		t.Fatal(err)
	}
	r3, _ := t3.Row(17)
	same := true
	for i := range r1 {
		// column 0 is the sequential PK — identical by construction
		if i == 0 {
			continue
		}
		if sqltypes.Compare(r1[i], r3[i]) != 0 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should generally produce different data")
	}
}

func TestSampleSchemaShape(t *testing.T) {
	gens := SampleSchema(1)
	byName := map[string]TableGen{}
	for _, g := range gens {
		byName[g.Name] = g
	}
	if byName["orders"].Rows != 100000 {
		t.Fatalf("orders rows: %d (paper: on the order of 100000s)", byName["orders"].Rows)
	}
	if byName["parts"].Rows != 1000 {
		t.Fatalf("parts rows: %d (paper: on the order of 1000s)", byName["parts"].Rows)
	}
	if byName["customer"].Rows != 1000 {
		t.Fatalf("customer rows: %d", byName["customer"].Rows)
	}
	// Scale floor behaviour.
	tiny := SampleSchema(1000000)
	for _, g := range tiny {
		if g.Rows < 5 {
			t.Fatalf("%s scaled below floor: %d", g.Name, g.Rows)
		}
	}
	if got := SampleSchema(0); got[0].Rows != 100000 {
		t.Fatal("scale < 1 should clamp to 1")
	}
}

func TestGenerateBuildsIndexes(t *testing.T) {
	g := SampleSchema(100)[1] // lineitem
	tab, err := g.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.IndexOnColumn("l_orderkey") == nil {
		t.Fatal("lineitem_ord index missing")
	}
	if tab.IndexOnColumn("l_id") == nil {
		t.Fatal("lineitem_pk index missing")
	}
}

func TestGeneratorPrimitives(t *testing.T) {
	g := TableGen{
		Name: "g",
		Rows: 50,
		Columns: []ColumnGen{
			{Name: "pk", Type: sqltypes.KindInt, Gen: SeqInt()},
			{Name: "u", Type: sqltypes.KindInt, Gen: UniformInt(10)},
			{Name: "f", Type: sqltypes.KindFloat, Gen: UniformFloat(5, 6)},
			{Name: "c", Type: sqltypes.KindString, Gen: Categorical("a", "b")},
			{Name: "p", Type: sqltypes.KindString, Gen: PaddedString("row")},
		},
	}
	tab, err := g.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	err = tab.Scan(func(r sqltypes.Row) error {
		if r[1].Int() < 0 || r[1].Int() >= 10 {
			t.Fatalf("uniform int out of range: %v", r[1])
		}
		if r[2].Float() < 5 || r[2].Float() >= 6 {
			t.Fatalf("uniform float out of range: %v", r[2])
		}
		if s := r[3].Str(); s != "a" && s != "b" {
			t.Fatalf("categorical: %v", r[3])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := tab.Row(0)
	if r0[4].Str() != "row-000000" {
		t.Fatalf("padded string: %v", r0[4])
	}
}

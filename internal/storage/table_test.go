package storage

import (
	"testing"

	"repro/internal/sqltypes"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Table: "t", Name: "id", Type: sqltypes.KindInt},
		sqltypes.Column{Table: "t", Name: "v", Type: sqltypes.KindFloat},
	)
	tab := NewTable("t", schema)
	var rows []sqltypes.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i) * 1.5)})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableAppendScan(t *testing.T) {
	tab := newTestTable(t)
	if tab.RowCount() != 100 {
		t.Fatalf("rowcount %d", tab.RowCount())
	}
	n := 0
	sum := int64(0)
	err := tab.Scan(func(r sqltypes.Row) error {
		n++
		sum += r[0].Int()
		return nil
	})
	if err != nil || n != 100 || sum != 4950 {
		t.Fatalf("scan n=%d sum=%d err=%v", n, sum, err)
	}
}

func TestTableAppendArityMismatch(t *testing.T) {
	tab := newTestTable(t)
	if err := tab.Append(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestTableRowAccessAndBounds(t *testing.T) {
	tab := newTestTable(t)
	r, err := tab.Row(5)
	if err != nil || r[0].Int() != 5 {
		t.Fatalf("row 5: %v %v", r, err)
	}
	if _, err := tab.Row(-1); err == nil {
		t.Fatal("negative index")
	}
	if _, err := tab.Row(100); err == nil {
		t.Fatal("past end")
	}
}

func TestTableUpdateAtBumpsVersionAndMaintainsIndex(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("t_id", "id", IndexHash); err != nil {
		t.Fatal(err)
	}
	v0 := tab.Version()
	if err := tab.UpdateAt(3, 0, sqltypes.NewInt(999)); err != nil {
		t.Fatal(err)
	}
	if tab.Version() <= v0 {
		t.Fatal("version must bump")
	}
	idx := tab.Index("t_id")
	if got := idx.LookupEq(sqltypes.NewInt(999)); len(got) != 1 || got[0] != 3 {
		t.Fatalf("index after update: %v", got)
	}
	if got := idx.LookupEq(sqltypes.NewInt(3)); len(got) != 0 {
		t.Fatalf("stale entry: %v", got)
	}
	if err := tab.UpdateAt(1000, 0, sqltypes.NewInt(1)); err == nil {
		t.Fatal("row bound")
	}
	if err := tab.UpdateAt(0, 9, sqltypes.NewInt(1)); err == nil {
		t.Fatal("col bound")
	}
}

func TestTableSnapshotIsolation(t *testing.T) {
	tab := newTestTable(t)
	snap := tab.Snapshot()
	if err := tab.UpdateAt(0, 0, sqltypes.NewInt(-7)); err != nil {
		t.Fatal(err)
	}
	if snap[0][0].Int() != 0 {
		t.Fatal("snapshot must not see later updates")
	}
}

func TestTablePages(t *testing.T) {
	tab := newTestTable(t)
	if tab.Pages() < 1 {
		t.Fatal("pages must be >=1 for non-empty table")
	}
	empty := NewTable("e", sqltypes.NewSchema(sqltypes.Column{Name: "x", Type: sqltypes.KindInt}))
	if empty.Pages() != 0 {
		t.Fatal("empty table pages")
	}
}

func TestTableStatsCaching(t *testing.T) {
	tab := newTestTable(t)
	s1 := tab.Stats()
	s2 := tab.Stats()
	if s1 != s2 {
		t.Fatal("stats should be cached while clean")
	}
	if err := tab.UpdateAt(0, 1, sqltypes.NewFloat(1e9)); err != nil {
		t.Fatal(err)
	}
	s3 := tab.Stats()
	if s3 == s1 {
		t.Fatal("stats must refresh after mutation")
	}
	if s3.Column("v").Max.Float() != 1e9 {
		t.Fatal("refreshed stats must see the update")
	}
}

func TestCreateIndexDuplicateAndUnknownColumn(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("i1", "id", IndexHash); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("i1", "id", IndexHash); err == nil {
		t.Fatal("duplicate index must fail")
	}
	if _, err := tab.CreateIndex("i2", "nope", IndexHash); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestIndexOnColumnPrefersSorted(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("h", "id", IndexHash); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("s", "id", IndexSorted); err != nil {
		t.Fatal(err)
	}
	idx := tab.IndexOnColumn("id")
	if idx == nil || idx.Kind() != IndexSorted {
		t.Fatalf("want sorted index, got %v", idx)
	}
	if tab.IndexOnColumn("v") != nil {
		t.Fatal("no index on v")
	}
	names := tab.Indexes()
	if len(names) != 2 || names[0] != "h" || names[1] != "s" {
		t.Fatalf("index names: %v", names)
	}
}

package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sqltypes"
)

// WriteCSV writes the table to w with a typed header line of the form
// "name:KIND" per column. NULLs render as empty fields; strings are
// CSV-quoted by the encoder as needed.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.schema.Len())
	for i, c := range t.schema.Columns {
		header[i] = c.Name + ":" + kindTag(c.Type)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	err := t.Scan(func(row sqltypes.Row) error {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = csvField(v)
		}
		return cw.Write(rec)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV builds a table named name from CSV produced by WriteCSV (or
// hand-written CSV with the same typed header).
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	cols := make([]sqltypes.Column, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		kind := sqltypes.KindString
		if len(parts) == 2 {
			k, err := kindFromTag(parts[1])
			if err != nil {
				return nil, err
			}
			kind = k
		}
		cols[i] = sqltypes.Column{Table: name, Name: strings.TrimSpace(parts[0]), Type: kind}
	}
	t := NewTable(name, sqltypes.NewSchema(cols...))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: reading CSV line %d: %w", line, err)
		}
		line++
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("storage: CSV line %d has %d fields, want %d", line, len(rec), len(cols))
		}
		row := make(sqltypes.Row, len(rec))
		for i, field := range rec {
			v, err := parseField(field, cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("storage: CSV line %d column %q: %w", line, cols[i].Name, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func kindTag(k sqltypes.Kind) string {
	switch k {
	case sqltypes.KindInt:
		return "INT"
	case sqltypes.KindFloat:
		return "FLOAT"
	case sqltypes.KindBool:
		return "BOOL"
	default:
		return "STRING"
	}
}

func kindFromTag(tag string) (sqltypes.Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(tag)) {
	case "INT", "INTEGER":
		return sqltypes.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return sqltypes.KindFloat, nil
	case "BOOL", "BOOLEAN":
		return sqltypes.KindBool, nil
	case "STRING", "VARCHAR", "TEXT":
		return sqltypes.KindString, nil
	default:
		return sqltypes.KindNull, fmt.Errorf("storage: unknown CSV type tag %q", tag)
	}
}

func csvField(v sqltypes.Value) string {
	if v.IsNull() {
		return ""
	}
	switch v.Kind() {
	case sqltypes.KindString:
		return v.Str()
	case sqltypes.KindInt:
		return strconv.FormatInt(v.Int(), 10)
	case sqltypes.KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case sqltypes.KindBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

func parseField(field string, kind sqltypes.Kind) (sqltypes.Value, error) {
	if field == "" {
		return sqltypes.Null, nil
	}
	switch kind {
	case sqltypes.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(n), nil
	case sqltypes.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(f), nil
	case sqltypes.KindBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(b), nil
	default:
		return sqltypes.NewString(field), nil
	}
}

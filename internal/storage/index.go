package storage

import (
	"sort"

	"repro/internal/sqltypes"
)

// IndexKind selects the index implementation.
type IndexKind uint8

const (
	// IndexHash serves equality probes only.
	IndexHash IndexKind = iota
	// IndexSorted serves equality and range probes (stand-in for a B-tree).
	IndexSorted
)

// String names the kind.
func (k IndexKind) String() string {
	if k == IndexSorted {
		return "SORTED"
	}
	return "HASH"
}

// Index maps column values to row positions. Indexes are owned by a Table
// and protected by the table's lock; methods here are not safe for
// concurrent use on their own.
type Index struct {
	name   string
	column string
	colIdx int
	kind   IndexKind

	hash   map[uint64][]int
	sorted []sortedEntry // kept ordered by value
}

type sortedEntry struct {
	val sqltypes.Value
	pos int
}

func newIndex(name, column string, colIdx int, kind IndexKind) *Index {
	return &Index{
		name:   name,
		column: column,
		colIdx: colIdx,
		kind:   kind,
		hash:   map[uint64][]int{},
	}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Column returns the indexed column name.
func (ix *Index) Column() string { return ix.column }

// Kind returns the index kind.
func (ix *Index) Kind() IndexKind { return ix.kind }

func (ix *Index) insert(row sqltypes.Row, pos int) {
	ix.insertValue(row[ix.colIdx], pos)
}

func (ix *Index) insertValue(v sqltypes.Value, pos int) {
	if v.IsNull() {
		return // NULLs are not indexed
	}
	h := v.Hash()
	ix.hash[h] = append(ix.hash[h], pos)
	if ix.kind == IndexSorted {
		i := sort.Search(len(ix.sorted), func(i int) bool {
			return sqltypes.Compare(ix.sorted[i].val, v) >= 0
		})
		ix.sorted = append(ix.sorted, sortedEntry{})
		copy(ix.sorted[i+1:], ix.sorted[i:])
		ix.sorted[i] = sortedEntry{val: v, pos: pos}
	}
}

func (ix *Index) remove(v sqltypes.Value, pos int) {
	if v.IsNull() {
		return
	}
	h := v.Hash()
	list := ix.hash[h]
	for i, p := range list {
		if p == pos {
			ix.hash[h] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if ix.kind == IndexSorted {
		for i, e := range ix.sorted {
			if e.pos == pos && sqltypes.Compare(e.val, v) == 0 {
				ix.sorted = append(ix.sorted[:i], ix.sorted[i+1:]...)
				break
			}
		}
	}
}

// LookupEq returns the positions of rows whose key equals v.
func (ix *Index) LookupEq(v sqltypes.Value) []int {
	if v.IsNull() {
		return nil
	}
	out := append([]int(nil), ix.hash[v.Hash()]...)
	return out
}

// LookupRange returns positions of rows with lo <= key <= hi; a nil bound is
// open. Only sorted indexes support ranges; hash indexes return nil, which
// callers treat as "index cannot serve this probe".
func (ix *Index) LookupRange(lo, hi *sqltypes.Value, loInclusive, hiInclusive bool) []int {
	if ix.kind != IndexSorted {
		return nil
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.sorted), func(i int) bool {
			c := sqltypes.Compare(ix.sorted[i].val, *lo)
			if loInclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.sorted)
	if hi != nil {
		end = sort.Search(len(ix.sorted), func(i int) bool {
			c := sqltypes.Compare(ix.sorted[i].val, *hi)
			if hiInclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	out := make([]int, 0, end-start)
	for _, e := range ix.sorted[start:end] {
		out = append(out, e.pos)
	}
	return out
}

// Len returns the number of indexed (non-NULL) entries.
func (ix *Index) Len() int {
	n := 0
	for _, list := range ix.hash {
		n += len(list)
	}
	return n
}

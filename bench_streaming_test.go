package fedqcc_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	fedqcc "repro"
)

// streamingBenchFederation builds the large-result slow-link scenario the
// streaming baseline regresses against: one midrange server behind a
// 50 KB/s, 20 ms link, large tables at scale 10 (10k-row lineitem).
func streamingBenchFederation() (*fedqcc.Federation, error) {
	b := fedqcc.NewBuilder(7).
		AddServer("S1", fedqcc.ProfileMidrange, fedqcc.LinkSpec{LatencyMS: 20, BandwidthKBps: 50})
	for _, spec := range fedqcc.StandardSchema(10) {
		b.AddGeneratedTable("S1", spec)
	}
	return b.Build()
}

const streamingBenchQuery = "SELECT l.l_orderkey, l.l_price FROM lineitem AS l"

// streamingBenchResult is the perf baseline written to BENCH_streaming.json.
type streamingBenchResult struct {
	Scenario string `json:"scenario"`
	Query    string `json:"query"`
	Rows     int    `json:"rows"`
	// Virtual (simulated) milliseconds.
	StreamedFirstRowMS   float64 `json:"streamed_first_row_ms"`
	StreamedResponseMS   float64 `json:"streamed_response_ms"`
	MonolithicResponseMS float64 `json:"monolithic_response_ms"`
	SpeedupX             float64 `json:"speedup_x"`
	// Wall-clock cost of one streamed query on this machine.
	WallNsPerOp int64 `json:"wall_ns_per_op"`
}

// BenchmarkStreamingLargeResult measures the streamed large-result scan and
// writes BENCH_streaming.json so future changes can regress against the
// pipeline's time-to-first-row, virtual response time, and wall cost.
func BenchmarkStreamingLargeResult(b *testing.B) {
	fed, err := streamingBenchFederation()
	if err != nil {
		b.Fatal(err)
	}
	var res *fedqcc.QueryResult
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = fed.Query(streamingBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wallPerOp := time.Since(start).Nanoseconds() / int64(b.N)

	mono, err := streamingBenchFederation()
	if err != nil {
		b.Fatal(err)
	}
	mono.SetBatchRows(0)
	mres, err := mono.Query(streamingBenchQuery)
	if err != nil {
		b.Fatal(err)
	}

	if res.ResponseTime >= mres.ResponseTime {
		b.Fatalf("pipelined response %v must beat store-and-forward %v", res.ResponseTime, mres.ResponseTime)
	}
	b.ReportMetric(float64(res.FirstRowTime), "first_row_vms")
	b.ReportMetric(float64(res.ResponseTime), "response_vms")
	b.ReportMetric(float64(mres.ResponseTime), "monolithic_vms")

	out := streamingBenchResult{
		Scenario:             "1xS1 midrange, 20ms/50KBps link, scale 10",
		Query:                streamingBenchQuery,
		Rows:                 len(res.Rows.Rows),
		StreamedFirstRowMS:   float64(res.FirstRowTime),
		StreamedResponseMS:   float64(res.ResponseTime),
		MonolithicResponseMS: float64(mres.ResponseTime),
		SpeedupX:             float64(mres.ResponseTime) / float64(res.ResponseTime),
		WallNsPerOp:          wallPerOp,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_streaming.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_streaming.json: %s", buf)
}

// Weighted replica routing benchmark: the hotspot burst over fully
// replicated tables, round-robin against the score-based weighted router.
// Emits BENCH_weighted.json recording the tail latencies and server balance
// per policy, and a CI smoke (WEIGHTED_ROUTING_CHECK=1) that fails if the
// weighted router stops beating round-robin on p99 or lets the server
// balance degrade past a fixed bound.
package fedqcc_test

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	fedqcc "repro"
)

const weightedBenchFile = "BENCH_weighted.json"

const (
	weightedBenchScale = 20 // 5000-row hot tables: big enough to be cache-bound
	weightedBenchBurst = 60
	// weightedUtilBound caps max/min per-server executions for the weighted
	// policy: affinity may skew the spread, but no replica may idle and none
	// may take more than this multiple of the least-loaded one.
	weightedUtilBound = 3.0
)

type weightedBenchPolicy struct {
	Policy      string  `json:"policy"` // round-robin | weighted
	AvgMS       float64 `json:"avg_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	ServersUsed int     `json:"servers_used"`
	MaxShare    float64 `json:"max_share"`
	UtilRatio   float64 `json:"util_ratio"` // -1 encodes +Inf (an idle server)
	Switched    int64   `json:"switched"`
}

type weightedBenchResult struct {
	Scale    int                   `json:"scale"`
	Burst    int                   `json:"burst"`
	Policies []weightedBenchPolicy `json:"policies"`
}

// measureWeightedRouting runs the two-arm hotspot study once: identical
// replicated federation, burst and calibration cadence per arm; only the
// routing policy differs.
func measureWeightedRouting(fatalf func(format string, args ...any)) weightedBenchResult {
	outcomes, err := fedqcc.RunWeightedRoutingStudy(
		fedqcc.ExperimentOptions{Scale: weightedBenchScale}, weightedBenchBurst)
	if err != nil {
		fatalf("weighted routing study: %v", err)
	}
	out := weightedBenchResult{Scale: weightedBenchScale, Burst: weightedBenchBurst}
	for _, o := range outcomes {
		ratio := o.UtilRatio
		if math.IsInf(ratio, 1) {
			ratio = -1
		}
		out.Policies = append(out.Policies, weightedBenchPolicy{
			Policy:      o.Policy,
			AvgMS:       o.AvgMS,
			P50MS:       o.P50MS,
			P95MS:       o.P95MS,
			P99MS:       o.P99MS,
			ServersUsed: o.ServersUsed,
			MaxShare:    o.MaxShare,
			UtilRatio:   ratio,
			Switched:    o.Switched,
		})
	}
	return out
}

func (r weightedBenchResult) policy(name string, fatalf func(format string, args ...any)) weightedBenchPolicy {
	for _, p := range r.Policies {
		if p.Policy == name {
			return p
		}
	}
	fatalf("study produced no %q outcome", name)
	return weightedBenchPolicy{}
}

func writeWeightedBenchFile(result weightedBenchResult) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(weightedBenchFile); err == nil {
		_ = json.Unmarshal(buf, &doc)
	}
	enc, err := json.Marshal(result)
	if err != nil {
		return err
	}
	doc["hotspot_burst"] = enc
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(weightedBenchFile, append(buf, '\n'), 0o644)
}

// BenchmarkWeightedRouting measures the hotspot study once per run and
// persists it to BENCH_weighted.json. The metrics are virtual (simulated
// clock), so the study runs outside the b.N loop and the loop just keeps the
// harness happy on -benchtime=1x CI runs.
func BenchmarkWeightedRouting(b *testing.B) {
	result := measureWeightedRouting(b.Fatalf)
	for _, p := range result.Policies {
		b.Logf("%-11s avg=%5.1f p50=%5.1f p95=%5.1f p99=%5.1f vms  servers=%d maxshare=%.0f%% util=%.2f switched=%d",
			p.Policy, p.AvgMS, p.P50MS, p.P95MS, p.P99MS,
			p.ServersUsed, p.MaxShare*100, p.UtilRatio, p.Switched)
	}
	rr := result.policy("round-robin", b.Fatalf)
	wt := result.policy("weighted", b.Fatalf)
	b.ReportMetric(wt.P99MS, "weighted_p99_vms")
	b.ReportMetric(rr.P99MS/wt.P99MS, "p99_speedup_x")
	if err := writeWeightedBenchFile(result); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (hotspot_burst)", weightedBenchFile)
	for i := 0; i < b.N; i++ {
	}
}

// TestWeightedRoutingSmoke is the CI perf gate: with WEIGHTED_ROUTING_CHECK=1
// it fails unless the weighted router (a) beats round-robin on p99 response
// time over the hotspot burst and (b) keeps every replica busy with a
// max/min execution ratio at or under weightedUtilBound. Unset, it is
// skipped, so ordinary test runs stay configuration-independent.
func TestWeightedRoutingSmoke(t *testing.T) {
	if os.Getenv("WEIGHTED_ROUTING_CHECK") != "1" {
		t.Skip("set WEIGHTED_ROUTING_CHECK=1 to enforce the weighted routing floor")
	}
	result := measureWeightedRouting(t.Fatalf)
	for _, p := range result.Policies {
		t.Logf("%-11s avg=%5.1f p50=%5.1f p95=%5.1f p99=%5.1f vms  servers=%d maxshare=%.0f%% util=%.2f switched=%d",
			p.Policy, p.AvgMS, p.P50MS, p.P95MS, p.P99MS,
			p.ServersUsed, p.MaxShare*100, p.UtilRatio, p.Switched)
	}
	rr := result.policy("round-robin", t.Fatalf)
	wt := result.policy("weighted", t.Fatalf)
	if wt.P99MS >= rr.P99MS {
		t.Errorf("weighted p99 %.1f vms does not beat round-robin %.1f vms", wt.P99MS, rr.P99MS)
	}
	if wt.ServersUsed < 2 {
		t.Errorf("weighted routing used %d server(s); affinity must not collapse to one replica",
			wt.ServersUsed)
	}
	if wt.UtilRatio < 0 || wt.UtilRatio > weightedUtilBound {
		t.Errorf("weighted max/min execution ratio %.2f outside (0, %.1f]: a replica idles or the balance degraded",
			wt.UtilRatio, weightedUtilBound)
	}
	if err := writeWeightedBenchFile(result); err != nil {
		t.Fatal(err)
	}
}

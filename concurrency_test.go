// Concurrency soak tests: the federated pipeline is exercised from many
// goroutines at once and its answers are compared row-for-row against a
// sequential baseline built from the same seed. Run with -race; the suite is
// the repo's concurrency gate.
package fedqcc_test

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	fedqcc "repro"
	"repro/internal/experiment"
)

const (
	soakScale   = 100 // divides the paper's table sizes; keep the soak fast under -race
	soakSeed    = 7
	soakQueries = 36
	soakWorkers = 8
)

func soakFederation(t testing.TB) *fedqcc.Federation {
	t.Helper()
	fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: soakScale, Seed: soakSeed})
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func soakStatements(n int) []string {
	r := rand.New(rand.NewSource(soakSeed))
	out := make([]string, n)
	for i := range out {
		out[i] = experiment.RandomQuery(r)
	}
	return out
}

// TestConcurrentMatchesSequential runs the same random federated workload
// through a sequential federation and through a concurrent worker pool over
// an identically-seeded federation, and requires identical answers in
// submission order.
func TestConcurrentMatchesSequential(t *testing.T) {
	sqls := soakStatements(soakQueries)

	seqFed := soakFederation(t)
	baseline := make([]*fedqcc.QueryResult, len(sqls))
	for i, q := range sqls {
		res, err := seqFed.Query(q)
		if err != nil {
			t.Fatalf("sequential query %d (%s): %v", i, q, err)
		}
		baseline[i] = res
	}

	concFed := soakFederation(t)
	results, errs := concFed.RunConcurrent(context.Background(), sqls, soakWorkers)
	for i := range sqls {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d (%s): %v", i, sqls[i], errs[i])
		}
		ordered := strings.Contains(sqls[i], "ORDER BY")
		if diff := experiment.RelationsEquivalent(baseline[i].Rows, results[i].Rows, ordered); diff != "" {
			t.Errorf("query %d (%s): concurrent answer differs from sequential: %s", i, sqls[i], diff)
		}
	}

	// Virtual-time invariant: concurrent charges stack into disjoint
	// intervals, so the final clock equals the sum of response times exactly
	// as in the sequential run.
	var sum fedqcc.Time
	for _, r := range results {
		sum += r.ResponseTime
	}
	if got := concFed.Now(); math.Abs(float64(got-sum)) > 1e-6*math.Max(1, float64(sum)) {
		t.Errorf("clock %v does not equal summed response times %v", got, sum)
	}

	// Patroller invariant: every submission logged and completed, with a
	// per-query response time rather than a wall-clock gap.
	log := concFed.QueryLog()
	if len(log) != len(sqls) {
		t.Fatalf("patroller logged %d entries, want %d", len(log), len(sqls))
	}
	for _, e := range log {
		if !e.Completed {
			t.Errorf("patroller entry %d (%s) not completed", e.ID, e.Query)
		}
		if e.Err != "" {
			t.Errorf("patroller entry %d recorded error %q", e.ID, e.Err)
		}
		if e.ResponseTime <= 0 {
			t.Errorf("patroller entry %d has response time %v", e.ID, e.ResponseTime)
		}
	}
}

// TestConcurrentSessionsWithQCC soaks a QCC-enabled federation with many
// sessions querying simultaneously (through QueryAsync) and checks that the
// calibration state stays sane: counters add up and every published factor
// is finite and positive.
func TestConcurrentSessionsWithQCC(t *testing.T) {
	fed := soakFederation(t)
	cal := fed.EnableQCC(fedqcc.QCCOptions{})
	sqls := soakStatements(soakQueries)

	const sessions = 6
	var wg sync.WaitGroup
	errCh := make(chan error, sessions*len(sqls))
	for s := 0; s < sessions; s++ {
		sess := fed.NewSession()
		wg.Add(1)
		go func(sess *fedqcc.Session, offset int) {
			defer wg.Done()
			var pending []*fedqcc.AsyncResult
			for i := range sqls {
				pending = append(pending, sess.QueryAsync(context.Background(), sqls[(i+offset)%len(sqls)]))
			}
			for _, p := range pending {
				if _, err := p.Wait(); err != nil {
					errCh <- err
				}
			}
			st := sess.Stats()
			if st.Submitted != len(sqls) || st.Completed+st.Failed != st.Submitted {
				t.Errorf("session stats do not add up: %+v", st)
			}
		}(sess, s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent session query: %v", err)
	}

	cal.PublishNow()
	for _, id := range fed.ServerIDs() {
		f := cal.ServerFactor(id)
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			t.Errorf("server %s calibration factor %v after soak", id, f)
		}
		if cal.IsFenced(id) {
			t.Errorf("server %s fenced after a healthy soak", id)
		}
	}
	compiles, runs, qccErrs := cal.Stats()
	if compiles <= 0 || runs <= 0 {
		t.Errorf("QCC observed compiles=%d runs=%d, want both > 0", compiles, runs)
	}
	if qccErrs != 0 {
		t.Errorf("QCC observed %d errors during a healthy soak", qccErrs)
	}
	if got := fed.QueryLog(); len(got) != sessions*len(sqls) {
		t.Errorf("patroller logged %d entries, want %d", len(got), sessions*len(sqls))
	}
}

// TestQueryContextCancellation submits a query with an already-cancelled
// context and requires a prompt error that does not corrupt later queries.
func TestQueryContextCancellation(t *testing.T) {
	fed := soakFederation(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fed.QueryContext(ctx, "SELECT o.o_id FROM orders AS o WHERE o.o_amount > 100"); err == nil {
		t.Fatal("expected error from cancelled context")
	}
	// The federation must remain fully usable.
	res, err := fed.Query("SELECT COUNT(*) FROM orders AS o WHERE o.o_amount > 100")
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	if res.Rows.Cardinality() != 1 {
		t.Fatalf("unexpected result shape after cancellation: %d rows", res.Rows.Cardinality())
	}
}

// TestRunConcurrentHonorsCancel cancels the pool context mid-run and checks
// that unstarted items are reported as skipped with context.Canceled.
func TestRunConcurrentHonorsCancel(t *testing.T) {
	fed := soakFederation(t)
	sqls := soakStatements(soakQueries)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := fed.RunConcurrent(ctx, sqls, 4)
	for i := range sqls {
		if errs[i] == nil && results[i] == nil {
			t.Errorf("query %d: nil error with nil result", i)
		}
	}
	// With the context cancelled before dispatch, at least one item must be
	// skipped rather than silently dropped.
	var skipped int
	for _, err := range errs {
		if err == context.Canceled {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("expected skipped items under a pre-cancelled context")
	}
}

package fedqcc

import (
	"context"

	"repro/internal/admission"
	"repro/internal/integrator"
)

// Re-exported admission types: the workload-management policy surface.
type (
	// AdmissionPolicy is a full admission configuration: a global
	// concurrency cap plus an ordered set of workload classes.
	AdmissionPolicy = admission.Policy
	// AdmissionClassConfig defines one workload class (priority, cost
	// ceiling, concurrency/queue caps, cost hold, queue deadline).
	AdmissionClassConfig = admission.ClassConfig
	// AdmissionStats is a point-in-time controller snapshot.
	AdmissionStats = admission.Stats
	// AdmissionClassStats is the per-class slice of AdmissionStats.
	AdmissionClassStats = admission.ClassStats
	// AdmissionRejection is the typed error refused queries receive; match
	// it broadly with ErrAdmissionRejected / ErrQueueTimeout.
	AdmissionRejection = admission.Rejection
	// QueryLogStats snapshots the query patroller's retention accounting.
	QueryLogStats = integrator.PatrollerStats
	// QueryLogTenantStats is one tenant's slice of QueryLogStats.
	QueryLogTenantStats = integrator.PatrollerTenantStats
	// Tenant configures one registered tenant: its fair-share weight,
	// optional concurrency/queue quotas, and per-class policy overrides.
	Tenant = admission.Tenant
	// TenantStats is a point-in-time snapshot of one tenant's admission
	// accounting.
	TenantStats = admission.TenantStats
)

// Typed admission errors. Every refusal matches ErrAdmissionRejected via
// errors.Is; queue-deadline sheds additionally match ErrQueueTimeout (and
// simclock's virtual-deadline sentinel, shared with fragment budgets).
var (
	ErrAdmissionRejected = admission.ErrAdmissionRejected
	ErrQueueTimeout      = admission.ErrQueueTimeout
	// ErrTenantQuota additionally matches refusals caused by a tenant's own
	// quota (queue-bound rejections and quota-blocked deadline sheds), so
	// callers can tell tenant-level back-pressure from class congestion.
	ErrTenantQuota = admission.ErrTenantQuota
)

// Built-in workload class names.
const (
	ClassInteractive = admission.ClassInteractive
	ClassBatch       = admission.ClassBatch
)

// DefaultAdmissionPolicy returns the unlimited interactive/batch taxonomy
// every federation starts with — admission effectively disabled.
func DefaultAdmissionPolicy() AdmissionPolicy { return admission.DefaultPolicy() }

// WithQueryClass tags a context with an explicit workload-class name: queries
// submitted under it skip cost classification and join that class directly
// (unknown names fall back to cost classification).
func WithQueryClass(ctx context.Context, class string) context.Context {
	return admission.WithClass(ctx, class)
}

// WithQueryTenant tags a context with the submitting tenant's name: queries
// submitted under it are scheduled by that tenant's fair-share weight,
// bounded by its quotas, and attributed to it in the query log and
// telemetry. Unregistered names get an implicit weight-1 tenant.
func WithQueryTenant(ctx context.Context, tenant string) context.Context {
	return admission.WithTenant(ctx, tenant)
}

// AdmissionHandle is the public control surface on the federation's
// workload-management subsystem.
type AdmissionHandle struct {
	c *admission.Controller
}

// Admission returns the workload-management handle. The controller is always
// installed; under the default unlimited policy it is a pure pass-through
// with bit-identical behaviour to an engine without admission control.
func (f *Federation) Admission() *AdmissionHandle { return &AdmissionHandle{c: f.adm} }

// Policy returns a copy of the current admission policy.
func (h *AdmissionHandle) Policy() AdmissionPolicy { return h.c.Policy() }

// SetPolicy replaces the admission policy at runtime; queued queries are
// re-resolved against the new class definitions.
func (h *AdmissionHandle) SetPolicy(p AdmissionPolicy) { h.c.SetPolicy(p) }

// SetGlobalCap tunes the global concurrency cap at runtime (0 = unlimited).
func (h *AdmissionHandle) SetGlobalCap(n int) { h.c.SetGlobalCap(n) }

// SetClassCap tunes one class's concurrency cap at runtime (0 = unlimited).
func (h *AdmissionHandle) SetClassCap(class string, cap int) error {
	return h.c.SetClassCap(class, cap)
}

// Disable reverts to the unlimited default policy: admission becomes a
// pass-through again (queued queries drain immediately).
func (h *AdmissionHandle) Disable() { h.c.SetPolicy(DefaultAdmissionPolicy()) }

// Stats snapshots the controller's counters.
func (h *AdmissionHandle) Stats() AdmissionStats { return h.c.Stats() }

// QueueDepth reports how many queries are waiting for admission right now.
func (h *AdmissionHandle) QueueDepth() int { return h.c.QueueDepth() }

// Running reports how many admitted queries hold slots right now.
func (h *AdmissionHandle) Running() int { return h.c.Running() }

// RegisterTenant registers (or reconfigures) a tenant. With at least one
// registered tenant the controller schedules across tenants by weighted fair
// queuing; with none registered behaviour is bit-identical to a
// tenant-unaware controller.
func (h *AdmissionHandle) RegisterTenant(t Tenant) { h.c.RegisterTenant(t) }

// DeregisterTenant removes a registered tenant, reporting whether it was
// registered. Deregistering the last one restores tenant-unaware behaviour.
func (h *AdmissionHandle) DeregisterTenant(name string) bool { return h.c.DeregisterTenant(name) }

// Tenants lists the registered tenant configurations sorted by name.
func (h *AdmissionHandle) Tenants() []Tenant { return h.c.Tenants() }

// TenantStats snapshots per-tenant admission accounting (registered and
// implicitly created tenants), sorted by served cost descending.
func (h *AdmissionHandle) TenantStats() []TenantStats { return h.c.TenantStats() }

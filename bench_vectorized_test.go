// Vectorized-engine benchmarks: per-kernel microbenchmarks (row engine vs
// columnar kernels over identical inputs), an end-to-end federated query
// comparison, and an env-gated speedup smoke check. Results persist to
// BENCH_vectorized.json so future changes can regress against both the
// wall-clock win and the virtual-time identity.
package fedqcc_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	fedqcc "repro"
	"repro/internal/exec"
	"repro/internal/exec/colbatch"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

const vectorizedBenchFile = "BENCH_vectorized.json"

func vbCol(name string) sqlparser.Expr { return &sqlparser.ColumnRef{Name: name} }
func vbInt(v int64) sqlparser.Expr     { return &sqlparser.Literal{Val: sqltypes.NewInt(v)} }

// vbRelation builds an n-row relation with an int column a (n/50 distinct
// values), a float column b, and a short string column c.
func vbRelation(n int) *sqltypes.Relation {
	rel := sqltypes.NewRelation(sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Type: sqltypes.KindInt},
		sqltypes.Column{Name: "b", Type: sqltypes.KindFloat},
		sqltypes.Column{Name: "c", Type: sqltypes.KindString},
	))
	mod := int64(n / 50)
	if mod < 1 {
		mod = 1
	}
	for i := 0; i < n; i++ {
		rel.Rows = append(rel.Rows, sqltypes.Row{
			sqltypes.NewInt(int64(i) % mod),
			sqltypes.NewFloat(float64(i) * 0.5),
			sqltypes.NewString(fmt.Sprintf("v%03d", i%997)),
		})
	}
	return rel
}

// vbValues wraps a relation as a Values leaf carrying both representations,
// the steady state of a columnar pipeline (fragments arrive as batches).
func vbValues(rel *sqltypes.Relation) *exec.Values {
	return &exec.Values{Rel: rel, Col: colbatch.FromRelation(rel), Label: "bench"}
}

// vectorizedBenchKernels builds one operator tree per measured kernel. The
// same tree serves both engines: Values.Execute reads Rel, ExecuteVectorized
// reads Col.
func vectorizedBenchKernels() map[string]exec.Operator {
	scanTab := storage.NewTable("bench_scan", sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Type: sqltypes.KindInt},
		sqltypes.Column{Name: "b", Type: sqltypes.KindFloat},
	))
	for i := 0; i < 100_000; i++ {
		scanTab.Append(sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i) * 0.25)})
	}
	big := vbRelation(200_000)
	mid := vbRelation(100_000)
	joinLeft := vbRelation(20_000)
	joinRight := vbRelation(20_000)
	return map[string]exec.Operator{
		"scan": &exec.SeqScan{Table: scanTab, As: "t"},
		"filter": &exec.Filter{
			Input: vbValues(big),
			Pred: &sqlparser.BinaryExpr{
				Op: sqlparser.OpLt, Left: vbCol("a"), Right: vbInt(2000),
			},
		},
		"project": &exec.Project{
			Input: vbValues(big),
			Items: []sqlparser.SelectItem{
				{Expr: vbCol("a")},
				{Expr: &sqlparser.BinaryExpr{Op: sqlparser.OpMul, Left: vbCol("b"), Right: vbCol("b")}, Alias: "bb"},
				{Expr: &sqlparser.BinaryExpr{Op: sqlparser.OpAdd, Left: vbCol("a"), Right: vbInt(7)}, Alias: "a7"},
			},
		},
		"agg": &exec.Aggregate{
			Input: vbValues(big),
			Aggs: []*sqlparser.AggExpr{
				{Func: sqlparser.AggSum, Arg: vbCol("b")},
				{Func: sqlparser.AggMin, Arg: vbCol("a")},
				{Func: sqlparser.AggCount},
			},
		},
		"agg_group": &exec.Aggregate{
			Input:   vbValues(mid),
			GroupBy: []sqlparser.Expr{vbCol("a")},
			Aggs: []*sqlparser.AggExpr{
				{Func: sqlparser.AggSum, Arg: vbCol("b")},
				{Func: sqlparser.AggCount},
			},
		},
		"sort": &exec.Sort{
			Input: vbValues(mid),
			Keys: []sqlparser.OrderItem{
				{Expr: vbCol("a")},
				{Expr: vbCol("b"), Desc: true},
			},
		},
		"join": &exec.HashJoin{
			Build:    vbValues(joinLeft),
			Probe:    vbValues(joinRight),
			BuildKey: vbCol("b"),
			ProbeKey: vbCol("b"),
		},
	}
}

// runKernel executes op once on the selected engine, returning the output
// cardinality.
func runKernel(op exec.Operator, vectorized bool) (int, error) {
	ctx := &exec.Context{}
	if vectorized {
		b, err := exec.ExecuteVectorized(op, ctx)
		if err != nil {
			return 0, err
		}
		return b.Len(), nil
	}
	rel, err := op.Execute(ctx)
	if err != nil {
		return 0, err
	}
	return len(rel.Rows), nil
}

// measureKernel times op on one engine: best ns/op over three trials, each
// trial doubling iterations until it spans at least 30ms of wall time. The
// first (untimed) run warms caches — deliberately, since the columnar scan
// cache is part of the steady state being measured.
func measureKernel(op exec.Operator, vectorized bool) (float64, error) {
	if _, err := runKernel(op, vectorized); err != nil {
		return 0, err
	}
	best := math.MaxFloat64
	for trial := 0; trial < 3; trial++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := runKernel(op, vectorized); err != nil {
					return 0, err
				}
			}
			elapsed := time.Since(start)
			if elapsed >= 30*time.Millisecond || iters >= 1<<14 {
				if per := float64(elapsed.Nanoseconds()) / float64(iters); per < best {
					best = per
				}
				break
			}
			iters *= 2
		}
	}
	return best, nil
}

// vectorizedKernelResult is one kernel's measured comparison.
type vectorizedKernelResult struct {
	Kernel      string  `json:"kernel"`
	RowWallNsOp float64 `json:"row_wall_ns_per_op"`
	VecWallNsOp float64 `json:"vectorized_wall_ns_per_op"`
	SpeedupX    float64 `json:"speedup_x"`
	OutputRows  int     `json:"output_rows"`
}

// updateVectorizedBenchFile read-modify-writes one section of
// BENCH_vectorized.json, so the kernel and end-to-end benchmarks can emit
// into the same file in either order.
func updateVectorizedBenchFile(section string, payload any) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(vectorizedBenchFile); err == nil {
		_ = json.Unmarshal(buf, &doc)
	}
	enc, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	doc[section] = enc
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(vectorizedBenchFile, append(buf, '\n'), 0o644)
}

// measureVectorizedKernels runs every kernel on both engines and returns the
// per-kernel comparison, verifying output cardinality agreement as it goes.
func measureVectorizedKernels(fatalf func(format string, args ...any)) map[string]vectorizedKernelResult {
	kernels := vectorizedBenchKernels()
	out := make(map[string]vectorizedKernelResult, len(kernels))
	for name, op := range kernels {
		rowN, err := runKernel(op, false)
		if err != nil {
			fatalf("%s (row engine): %v", name, err)
		}
		vecN, err := runKernel(op, true)
		if err != nil {
			fatalf("%s (vectorized): %v", name, err)
		}
		if rowN != vecN {
			fatalf("%s: output cardinality diverged: %d (row) vs %d (vectorized)", name, rowN, vecN)
		}
		rowNs, err := measureKernel(op, false)
		if err != nil {
			fatalf("%s (row engine): %v", name, err)
		}
		vecNs, err := measureKernel(op, true)
		if err != nil {
			fatalf("%s (vectorized): %v", name, err)
		}
		out[name] = vectorizedKernelResult{
			Kernel:      name,
			RowWallNsOp: rowNs,
			VecWallNsOp: vecNs,
			SpeedupX:    rowNs / vecNs,
			OutputRows:  rowN,
		}
	}
	return out
}

// BenchmarkVectorizedKernels compares the row and columnar engines kernel by
// kernel over identical inputs and writes the comparison to
// BENCH_vectorized.json. The per-iteration benchmark body runs the vectorized
// engine, so standard -bench tooling tracks the columnar side's wall cost.
func BenchmarkVectorizedKernels(b *testing.B) {
	results := measureVectorizedKernels(b.Fatalf)
	kernels := vectorizedBenchKernels()
	for name, op := range kernels {
		b.Run(name, func(b *testing.B) {
			if _, err := runKernel(op, true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runKernel(op, true); err != nil {
					b.Fatal(err)
				}
			}
			r := results[name]
			b.ReportMetric(r.SpeedupX, "speedup_x")
			b.ReportMetric(r.RowWallNsOp, "row_ns/op")
		})
	}
	if err := updateVectorizedBenchFile("kernels", results); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (kernels)", vectorizedBenchFile)
}

// vectorizedEndToEndResult is the federated-query comparison persisted to
// BENCH_vectorized.json: identical virtual outcomes, differing wall cost.
type vectorizedEndToEndResult struct {
	Scenario         string  `json:"scenario"`
	Query            string  `json:"query"`
	Rows             int     `json:"rows"`
	ResponseVirtMS   float64 `json:"response_virtual_ms"`
	RowWallNsPerOp   int64   `json:"row_wall_ns_per_op"`
	VecWallNsPerOp   int64   `json:"vectorized_wall_ns_per_op"`
	WallSpeedupX     float64 `json:"wall_speedup_x"`
	VirtualIdentical bool    `json:"virtual_identical"`
}

// BenchmarkVectorizedEndToEnd runs the streaming large-result scenario with
// the columnar engine and compares against the row engine: virtual response
// times must match exactly while wall cost drops.
func BenchmarkVectorizedEndToEnd(b *testing.B) {
	const query = "SELECT l.l_orderkey, l.l_price FROM lineitem AS l WHERE l.l_price > 10"
	run := func(vectorized bool, iters int) (*fedqcc.QueryResult, int64, error) {
		fed, err := streamingBenchFederation()
		if err != nil {
			return nil, 0, err
		}
		fed.SetVectorized(vectorized)
		res, err := fed.Query(query) // warm compile caches and the scan cache
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if res, err = fed.Query(query); err != nil {
				return nil, 0, err
			}
		}
		return res, time.Since(start).Nanoseconds() / int64(iters), nil
	}

	vecRes, vecNs, err := run(true, b.N)
	if err != nil {
		b.Fatal(err)
	}
	rowRes, rowNs, err := run(false, b.N)
	if err != nil {
		b.Fatal(err)
	}
	// The virtual-time model must not see the engine swap. (Both runs issued
	// the same query sequence, so their clocks advanced identically.)
	identical := rowRes.ResponseTime == vecRes.ResponseTime &&
		rowRes.FirstRowTime == vecRes.FirstRowTime &&
		len(rowRes.Rows.Rows) == len(vecRes.Rows.Rows)
	if !identical {
		b.Fatalf("virtual outcomes diverged: row %v/%v vs vectorized %v/%v",
			rowRes.ResponseTime, rowRes.FirstRowTime, vecRes.ResponseTime, vecRes.FirstRowTime)
	}
	b.ReportMetric(float64(rowNs)/float64(vecNs), "wall_speedup_x")
	b.ReportMetric(float64(vecRes.ResponseTime), "response_vms")

	out := vectorizedEndToEndResult{
		Scenario:         "1xS1 midrange, 20ms/50KBps link, scale 10, streamed",
		Query:            query,
		Rows:             len(vecRes.Rows.Rows),
		ResponseVirtMS:   float64(vecRes.ResponseTime),
		RowWallNsPerOp:   rowNs,
		VecWallNsPerOp:   vecNs,
		WallSpeedupX:     float64(rowNs) / float64(vecNs),
		VirtualIdentical: identical,
	}
	if err := updateVectorizedBenchFile("end_to_end", out); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (end_to_end)", vectorizedBenchFile)
}

// TestVectorizedSpeedupSmoke is the CI perf gate: with
// VECTORIZED_SPEEDUP_CHECK=1 it fails unless the scan, filter, and agg
// kernels beat the row engine by at least 3x (the acceptance target is 5x;
// the gate leaves headroom for noisy CI machines). Unset, it is skipped, so
// ordinary test runs stay timing-independent.
func TestVectorizedSpeedupSmoke(t *testing.T) {
	if os.Getenv("VECTORIZED_SPEEDUP_CHECK") != "1" {
		t.Skip("set VECTORIZED_SPEEDUP_CHECK=1 to enforce the vectorized speedup floor")
	}
	const floor = 3.0
	results := measureVectorizedKernels(t.Fatalf)
	for _, name := range []string{"scan", "filter", "agg", "agg_group"} {
		r := results[name]
		t.Logf("%s: row %.0f ns/op, vectorized %.0f ns/op, speedup %.1fx",
			name, r.RowWallNsOp, r.VecWallNsOp, r.SpeedupX)
		if r.SpeedupX < floor {
			t.Errorf("%s kernel speedup %.2fx below the %.0fx floor", name, r.SpeedupX, floor)
		}
	}
	for _, name := range []string{"project", "sort", "join"} {
		r := results[name]
		t.Logf("%s: row %.0f ns/op, vectorized %.0f ns/op, speedup %.1fx (informational)",
			name, r.RowWallNsOp, r.VecWallNsOp, r.SpeedupX)
	}
}

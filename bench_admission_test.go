// Admission benchmarks (white-box: package fedqcc so the gate can be
// detached entirely). BenchmarkAdmissionOverhead compares the engine with the
// default pass-through controller against one with no controller at all and
// writes BENCH_admission.json; the <2% budget is asserted by the env-gated
// TestAdmissionOverheadSmoke. BenchmarkAdmissionOverload measures a mixed
// burst at twice the global cap.
package fedqcc

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/experiment"
	"repro/internal/workload"
)

const admBenchScale = 100

func admBenchFederation(tb testing.TB) *Federation {
	tb.Helper()
	fed, err := NewPaperFederation(FederationOptions{Scale: admBenchScale, Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	return fed
}

func admBenchStatements(n int) []string {
	r := rand.New(rand.NewSource(7))
	out := make([]string, n)
	for i := range out {
		out[i] = experiment.RandomQuery(r)
	}
	return out
}

// admCompare times the concurrent workload with the pass-through admission
// gate installed vs detached. The two configurations are sampled
// interleaved (A, B, A, B, ...) so scheduler and frequency drift hit both
// equally, and each side keeps its best-of-reps.
func admCompare(tb testing.TB, sqls []string, reps int) (gated, ungated time.Duration) {
	gatedFed := admBenchFederation(tb)
	ungatedFed := admBenchFederation(tb)
	ungatedFed.ii.SetAdmission(nil)
	drive := func(fed *Federation, rounds int) {
		for r := 0; r < rounds; r++ {
			_, errs := fed.RunConcurrent(context.Background(), sqls, 8)
			for _, e := range errs {
				if e != nil {
					tb.Fatal(e)
				}
			}
		}
	}
	sample := func(fed *Federation) time.Duration {
		start := time.Now()
		drive(fed, 4)
		return time.Since(start)
	}
	drive(gatedFed, 2) // warm plan caches and steady-state the scheduler
	drive(ungatedFed, 2)
	gated, ungated = time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	for rep := 0; rep < reps; rep++ {
		if d := sample(gatedFed); d < gated {
			gated = d
		}
		if d := sample(ungatedFed); d < ungated {
			ungated = d
		}
	}
	return gated, ungated
}

// admGateCost microbenchmarks one pass-through Admit+Release round trip on a
// federation's controller under its default (disabled) policy.
func admGateCost(tb testing.TB, fed *Federation, ops int) time.Duration {
	tb.Helper()
	ctx := context.Background()
	req := admission.Request{Query: "bench", CostMS: 5}
	// Warm the tally map and grant allocation path.
	for i := 0; i < 1000; i++ {
		g, err := fed.adm.Admit(ctx, req)
		if err != nil {
			tb.Fatal(err)
		}
		g.Release()
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		g, err := fed.adm.Admit(ctx, req)
		if err != nil {
			tb.Fatal(err)
		}
		g.Release()
	}
	return time.Since(start) / time.Duration(ops)
}

func admP95(durations []Time) Time {
	sorted := append([]Time(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

type admBurstOutcome struct {
	uncontendedP95 Time
	burstP95       Time
	admitted       int64
	shed           int64
}

// admissionBurst drives the overload scenario: global cap 5, batch capped at
// one slot with a cost hold, then a 10-query burst (4 interactive, 2 light
// batch, 4 heavy batch that exceed the hold).
func admissionBurst(tb testing.TB) admBurstOutcome {
	tb.Helper()
	qt1, err := workload.TypeByName("QT1")
	if err != nil {
		tb.Fatal(err)
	}
	qt4, err := workload.TypeByName("QT4")
	if err != nil {
		tb.Fatal(err)
	}
	interactive := workload.Instances(qt4, 4)
	lightBatch := workload.Instances(qt4, 6)[4:6]
	heavyBatch := workload.Instances(qt1, 4)

	base := admBenchFederation(tb)
	var uncontended []Time
	for _, q := range interactive {
		res, err := base.Query(q)
		if err != nil {
			tb.Fatal(err)
		}
		uncontended = append(uncontended, res.ResponseTime)
	}

	fed := admBenchFederation(tb)
	maxLight, minHeavy := 0.0, math.Inf(1)
	for _, q := range lightBatch {
		info, err := fed.Explain(q)
		if err != nil {
			tb.Fatal(err)
		}
		maxLight = math.Max(maxLight, info.TotalCostMS)
	}
	for _, q := range heavyBatch {
		info, err := fed.Explain(q)
		if err != nil {
			tb.Fatal(err)
		}
		minHeavy = math.Min(minHeavy, info.TotalCostMS)
	}
	pol := DefaultAdmissionPolicy()
	pol.MaxConcurrent = 5
	for i := range pol.Classes {
		if pol.Classes[i].Name == ClassBatch {
			pol.Classes[i].MaxConcurrent = 1
			pol.Classes[i].HoldCostMS = (maxLight + minHeavy) / 2
			pol.Classes[i].QueueDeadline = 60000
		}
	}
	fed.Admission().SetPolicy(pol)

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		lat   []Time
		errat int
	)
	launch := func(sql, class string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := fed.QueryContext(WithQueryClass(context.Background(), class), sql)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errat++
				return
			}
			if class == ClassInteractive {
				lat = append(lat, res.ResponseTime+res.QueueWait)
			}
		}()
	}
	for _, q := range interactive {
		launch(q, ClassInteractive)
	}
	for _, q := range lightBatch {
		launch(q, ClassBatch)
	}
	for _, q := range heavyBatch {
		launch(q, ClassBatch)
	}
	wg.Wait()

	st := fed.Admission().Stats()
	out := admBurstOutcome{uncontendedP95: admP95(uncontended), burstP95: admP95(lat)}
	for _, cs := range st.Classes {
		out.admitted += cs.Admitted
		out.shed += cs.Shed
	}
	if len(lat) != len(interactive) {
		tb.Fatalf("only %d/%d interactive queries completed", len(lat), len(interactive))
	}
	return out
}

// admissionBenchResult is the perf baseline written to BENCH_admission.json.
type admissionBenchResult struct {
	Scenario string `json:"scenario"`
	Queries  int    `json:"queries"`
	// Interleaved best-of-N wall clock for the same workload with the
	// pass-through gate installed vs no gate at all (informational: the A/B
	// delta is dominated by per-process layout noise, not the gate).
	GatedNs   int64 `json:"gated_ns"`
	UngatedNs int64 `json:"ungated_ns"`
	// The asserted overhead metric: one Admit+Release round trip on the
	// disabled gate, as a fraction of one query's wall cost.
	GateNsPerOp         int64   `json:"gate_ns_per_op"`
	QueryNsPerOp        int64   `json:"query_ns_per_op"`
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	// Overload burst summary (virtual milliseconds).
	UncontendedInteractiveP95MS float64 `json:"uncontended_interactive_p95_ms"`
	BurstInteractiveP95MS       float64 `json:"burst_interactive_p95_ms"`
	BurstAdmitted               int64   `json:"burst_admitted"`
	BurstShed                   int64   `json:"burst_shed"`
	// Wall-clock cost of one gated workload round on this machine.
	WallNsPerOp int64 `json:"wall_ns_per_op"`
}

// BenchmarkAdmissionOverhead times the concurrent workload through the
// default (disabled, pass-through) admission gate and records the baseline
// comparison against a gate-less engine in BENCH_admission.json.
func BenchmarkAdmissionOverhead(b *testing.B) {
	sqls := admBenchStatements(16)
	fed := admBenchFederation(b)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, errs := fed.RunConcurrent(context.Background(), sqls, 8)
		for _, e := range errs {
			if e != nil {
				b.Fatal(e)
			}
		}
	}
	b.StopTimer()
	wallPerOp := time.Since(start).Nanoseconds() / int64(b.N)

	gated, ungated := admCompare(b, sqls, 5)
	gateNs := admGateCost(b, fed, 100000)
	queryNs := time.Duration(wallPerOp / int64(len(sqls)))
	overheadPct := 100 * float64(gateNs) / float64(queryNs)
	b.ReportMetric(overheadPct, "disabled_overhead_%")

	burst := admissionBurst(b)
	out := admissionBenchResult{
		Scenario:                    "paper federation, scale 100, 16 queries x 8 workers",
		Queries:                     len(sqls),
		GatedNs:                     gated.Nanoseconds(),
		UngatedNs:                   ungated.Nanoseconds(),
		GateNsPerOp:                 gateNs.Nanoseconds(),
		QueryNsPerOp:                queryNs.Nanoseconds(),
		DisabledOverheadPct:         overheadPct,
		UncontendedInteractiveP95MS: float64(burst.uncontendedP95),
		BurstInteractiveP95MS:       float64(burst.burstP95),
		BurstAdmitted:               burst.admitted,
		BurstShed:                   burst.shed,
		WallNsPerOp:                 wallPerOp,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_admission.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_admission.json: %s", buf)
}

// BenchmarkAdmissionOverload measures the mixed burst at twice the global
// cap: wall cost per burst plus the virtual interactive p95 and shed count.
func BenchmarkAdmissionOverload(b *testing.B) {
	var out admBurstOutcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = admissionBurst(b)
	}
	b.StopTimer()
	b.ReportMetric(float64(out.burstP95), "interactive_p95_vms")
	b.ReportMetric(float64(out.uncontendedP95), "uncontended_p95_vms")
	b.ReportMetric(float64(out.shed), "shed")
}

// TestAdmissionOverheadSmoke asserts the disabled (pass-through) admission
// gate costs under 2% of a query's wall cost. The assertion compares a
// microbenchmark of one Admit+Release round trip against the measured
// per-query cost of the concurrent workload — a direct gated-vs-ungated wall
// comparison cannot resolve the ~0.1% true cost under per-process layout
// noise of several percent. Runs when CI (or a developer) opts in via
// ADMISSION_OVERHEAD_CHECK=1.
func TestAdmissionOverheadSmoke(t *testing.T) {
	if os.Getenv("ADMISSION_OVERHEAD_CHECK") == "" {
		t.Skip("set ADMISSION_OVERHEAD_CHECK=1 to run the overhead comparison")
	}
	sqls := admBenchStatements(16)
	fed := admBenchFederation(t)
	drive := func(rounds int) int {
		n := 0
		for r := 0; r < rounds; r++ {
			_, errs := fed.RunConcurrent(context.Background(), sqls, 8)
			for _, e := range errs {
				if e != nil {
					t.Fatal(e)
				}
			}
			n += len(sqls)
		}
		return n
	}
	drive(2) // warm plan caches and steady-state the scheduler
	best := time.Duration(math.MaxInt64)
	const rounds = 4
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		n := drive(rounds)
		if d := time.Since(start) / time.Duration(n); d < best {
			best = d
		}
	}
	gateNs := admGateCost(t, fed, 100000)
	overhead := float64(gateNs) / float64(best)
	t.Logf("gate=%v/op query=%v/op overhead=%.3f%%", gateNs, best, overhead*100)
	if overhead > 0.02 {
		t.Fatalf("disabled admission gate costs %.3f%% of a query (gate=%v query=%v), over the 2%% budget",
			overhead*100, gateNs, best)
	}
}

package fedqcc_test

import (
	"context"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	fedqcc "repro"
	"repro/internal/experiment"
	"repro/internal/telemetry"
)

const crossJoin = "SELECT COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_id = l.l_orderkey WHERE o.o_amount > 5000"

// TestTelemetryFiveLayerTrace is the tentpole acceptance check: a
// two-fragment federated join under background update load must yield one
// trace whose spans cover all five layers, with virtual-time durations that
// sum consistently bottom-up, plus a calibration timeline holding at least
// two distinct samples for every loaded server.
func TestTelemetryFiveLayerTrace(t *testing.T) {
	fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	tel := fed.EnableTelemetry()
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})

	// Background update load on the join's source groups.
	tables := map[string]string{"S1": "orders", "S2": "lineitem"}
	loaded := []string{"S1", "S2"}
	for _, id := range loaded {
		h, err := fed.Server(id)
		if err != nil {
			t.Fatal(err)
		}
		h.SetLoad(0.8)
		if err := h.ApplyUpdateBurst(tables[id], 50, 7); err != nil {
			t.Fatal(err)
		}
	}

	// Two recalibration cycles with load shifting in between: the timeline
	// must record the factors at two distinct virtual times per server.
	// Probing first gives every server calibration state (fragments may
	// route to replicas), so each publish covers each loaded server.
	for i := 0; i < 4; i++ {
		if _, err := fed.Query(crossJoin); err != nil {
			t.Fatal(err)
		}
	}
	cal.ProbeNow()
	cal.PublishNow()
	for _, id := range loaded {
		h, _ := fed.Server(id)
		h.SetLoad(0.3)
	}
	for i := 0; i < 4; i++ {
		if _, err := fed.Query(crossJoin); err != nil {
			t.Fatal(err)
		}
	}
	cal.ProbeNow()
	cal.PublishNow()

	res, err := fed.Query(crossJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FragmentTimes) != 2 {
		t.Fatalf("want a 2-fragment join, got fragments %v", res.FragmentTimes)
	}

	tr := tel.Tracer().Last()
	if tr == nil || !tr.Done() || tr.Err() != "" {
		t.Fatalf("last trace must be complete and clean: %+v", tr)
	}

	// All five layers appear in the span tree.
	layers := map[telemetry.Layer]bool{}
	var walk func(s *telemetry.Span)
	walk = func(s *telemetry.Span) {
		layers[s.Layer()] = true
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(tr.Root)
	for _, l := range []telemetry.Layer{
		telemetry.LayerII, telemetry.LayerMW, telemetry.LayerWrapper,
		telemetry.LayerNetwork, telemetry.LayerRemote,
	} {
		if !layers[l] {
			t.Fatalf("trace missing layer %q; tree:\n%s", l, tr.Tree())
		}
	}

	// Durations sum consistently bottom-up on virtual time.
	const eps = 1e-6
	root := tr.Root
	if d := float64(root.Dur()) - float64(res.ResponseTime); math.Abs(d) > eps {
		t.Fatalf("root span %.6fms != response time %.6fms", float64(root.Dur()), float64(res.ResponseTime))
	}
	var maxFrag, mergeDur float64
	frags := 0
	for _, c := range root.Children() {
		switch c.Name() {
		case "fragment":
			frags++
			maxFrag = math.Max(maxFrag, float64(c.Dur()))
			// fragment == wrapper.execute == send + remote.exec + recv.
			var wexec *telemetry.Span
			for _, cc := range c.Children() {
				if cc.Name() == "wrapper.execute" {
					wexec = cc
				}
			}
			if wexec == nil {
				t.Fatalf("fragment(%s) has no wrapper.execute child:\n%s", c.Server(), tr.Tree())
			}
			if d := float64(c.Dur()) - float64(wexec.Dur()); math.Abs(d) > eps {
				t.Fatalf("fragment(%s) %.6fms != wrapper.execute %.6fms", c.Server(), float64(c.Dur()), float64(wexec.Dur()))
			}
			var sum float64
			for _, hop := range wexec.Children() {
				sum += float64(hop.Dur())
			}
			if d := sum - float64(wexec.Dur()); math.Abs(d) > eps {
				t.Fatalf("wrapper.execute(%s) children sum %.6fms != %.6fms", c.Server(), sum, float64(wexec.Dur()))
			}
		case "merge":
			mergeDur = float64(c.Dur())
		}
	}
	if frags != 2 {
		t.Fatalf("trace must hold 2 fragment spans, got %d:\n%s", frags, tr.Tree())
	}
	// Root = parallel remote phase (max fragment) + II-side merge.
	if d := maxFrag + mergeDur - float64(root.Dur()); math.Abs(d) > eps {
		t.Fatalf("max fragment %.6f + merge %.6f != root %.6f", maxFrag, mergeDur, float64(root.Dur()))
	}

	// Calibration timeline: >= 2 distinct-time samples per loaded server.
	for _, id := range loaded {
		samples := tel.Timelines().ServerSamples(id)
		times := map[float64]bool{}
		for _, s := range samples {
			times[float64(s.At)] = true
		}
		if len(times) < 2 {
			t.Fatalf("server %s: want >=2 distinct timeline samples, got %v", id, samples)
		}
	}
}

// TestTelemetryDisabledStaysSilent guards the fast path through the public
// API: with telemetry never enabled, queries must leave no traces, metrics
// or timeline samples behind.
func TestTelemetryDisabledStaysSilent(t *testing.T) {
	fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	if _, err := fed.Query(crossJoin); err != nil {
		t.Fatal(err)
	}
	cal.PublishNow()
	tel := fed.Telemetry()
	if tel.Tracer().Len() != 0 {
		t.Fatal("disabled telemetry collected traces")
	}
	if snap := tel.Metrics().Snapshot(); len(snap) != 0 {
		t.Fatalf("disabled telemetry collected metrics: %v", snap)
	}
	if tel.Timelines().Len() != 0 {
		t.Fatal("disabled telemetry collected timeline samples")
	}
}

// TestTelemetryOverheadSmoke compares wall-clock throughput of the same
// concurrent workload with telemetry off vs on and fails when enabling it
// costs more than 10%. Wall-time comparisons are noisy, so the check only
// runs when CI (or a developer) opts in via TELEMETRY_OVERHEAD_CHECK=1.
func TestTelemetryOverheadSmoke(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_CHECK") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_CHECK=1 to run the overhead comparison")
	}
	sqls := make([]string, 0, 16)
	r := rand.New(rand.NewSource(1))
	for len(sqls) < cap(sqls) {
		sqls = append(sqls, experiment.RandomQuery(r))
	}
	run := func(enable bool) time.Duration {
		fed, err := fedqcc.NewPaperFederation(fedqcc.FederationOptions{Scale: benchScale, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			fed.EnableTelemetry()
		}
		drive := func(rounds int) {
			for i := 0; i < rounds; i++ {
				_, errs := fed.RunConcurrent(context.Background(), sqls, 8)
				for _, e := range errs {
					if e != nil {
						t.Fatal(e)
					}
				}
			}
		}
		drive(2) // warm caches and steady-state the scheduler
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			drive(4)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	off := run(false)
	on := run(true)
	overhead := float64(on-off) / float64(off)
	t.Logf("telemetry off=%v on=%v overhead=%.1f%%", off, on, overhead*100)
	if overhead > 0.10 {
		t.Fatalf("telemetry overhead %.1f%% exceeds the 10%% budget (off=%v on=%v)", overhead*100, off, on)
	}
}

// TestReplTelemetryCommands drives the REPL surface end to end: toggling
// collection, then dumping the trace tree, metrics and timeline.
func TestReplTelemetryCommands(t *testing.T) {
	fed, err := fedqcc.NewReplicaFederation(fedqcc.FederationOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	cal := fed.EnableQCC(fedqcc.QCCOptions{DisableDaemons: true})
	fed.EnableTelemetry()
	if _, err := fed.Query(crossJoin); err != nil {
		t.Fatal(err)
	}
	cal.PublishNow()

	tr := fed.Telemetry().Tracer().Last()
	if tr == nil {
		t.Fatal("no trace collected")
	}
	tree := tr.Tree()
	for _, want := range []string{"query", "fragment(", "wrapper.execute(", "remote.exec(", "merge"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace tree missing %q:\n%s", want, tree)
		}
	}
	metrics := fedqcc.FormatMetrics(fed.Telemetry().Metrics())
	for _, want := range []string{"ii.queries", "mw.response_ms", "qcc.calibration_factor"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, metrics)
		}
	}
	timeline := fedqcc.FormatTimeline(fed.Telemetry().Timelines())
	if !strings.Contains(timeline, "factor=") {
		t.Fatalf("timeline dump missing samples:\n%s", timeline)
	}
}
